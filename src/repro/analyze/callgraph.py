"""Whole-project call graph with two-tier edge resolution.

Python's dynamism makes a sound static call graph impossible, so the graph
keeps two edge sets and lets each rule pick the approximation matching the
direction of its check:

* **precise** edges — the receiver's class is known: ``self.m()`` (resolved
  through the base-class chain), ``super().m()``, calls on names whose class
  is pinned by a parameter annotation, a constructor assignment
  (``x = FileData(...)``), or an inferred ``self.attr`` type, plus direct
  calls to module-level functions resolved through the import table.
* **loose** edges — ``obj.m()`` on an unknown receiver matches *every*
  project function named ``m``.

A "must eventually charge the clock" check follows precise + loose edges
(over-approximating reachability keeps false positives down); a "must never
charge" check follows only precise edges (so a name collision cannot
manufacture a violation).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analyze.core import subtree_nodes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.analyze.core import Project, SourceFile

#: Call-site attribute names treated as a direct virtual-clock charge.
_CHARGE_ATTRS = ("advance",)
_CHARGE_PREFIX = "_charge"
_CHARGE_EXTRA = ("charge_lookup_hit",)


def is_charge_name(name: str) -> bool:
    """Whether a called attribute/function name is itself a clock charge."""
    return name in _CHARGE_ATTRS or name.startswith(_CHARGE_PREFIX) or name in _CHARGE_EXTRA


class FunctionInfo:
    """One function or method definition."""

    def __init__(self, sf: "SourceFile", node: ast.FunctionDef | ast.AsyncFunctionDef,
                 cls: "ClassInfo | None") -> None:
        self.sf = sf
        self.node = node
        self.cls = cls
        self.name = node.name
        owner = f"{cls.name}." if cls else ""
        self.qualname = f"{sf.module}:{owner}{node.name}"
        #: Qualnames of callees resolved with a known receiver type.
        self.precise: set[str] = set()
        #: Attribute names of calls whose receiver could not be typed.
        self.loose: set[str] = set()
        #: The function's own body contains a clock charge.
        self.direct_charge = False


class ClassInfo:
    """One class definition: bases, methods, inferred attribute types."""

    def __init__(self, sf: "SourceFile", node: ast.ClassDef) -> None:
        self.sf = sf
        self.node = node
        self.name = node.name
        self.qualname = f"{sf.module}.{node.name}"
        #: Raw base expressions rendered to dotted names ("Filesystem",
        #: "random.Random", ...).
        self.base_names = [_dotted(b) for b in node.bases]
        self.methods: dict[str, FunctionInfo] = {}
        #: self.<attr> -> ClassInfo qualname, from constructor assignments
        #: and annotations.
        self.attr_types: dict[str, str] = {}


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` / ``a`` expressions to a dotted string."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _annotation_class_name(node: ast.AST | None) -> str | None:
    """The class named by a *simple* annotation, if any.

    Handles ``C``, ``"C"``, ``mod.C``, ``C | None`` and ``Optional[C]``.
    Container annotations (``dict[int, C]``) name no receiver type — the
    variable is the container, not ``C``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _dotted(node)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                got = _annotation_class_name(side)
                if got:
                    return got
        return None
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head in ("Optional", "typing.Optional"):
            return _annotation_class_name(node.slice)
    return None


def _never_true(test: ast.AST) -> bool:
    """Whether an ``if`` test is statically known to be false at runtime.

    Recognises ``if False:`` / ``if 0:`` and the ``if TYPE_CHECKING:`` idiom
    (bare or dotted).  Call extraction prunes the guarded bodies: calls that
    can never execute — typing-only imports, documented-but-disabled debug
    hooks, zero-cost declarations — must not create call-graph edges, which
    would otherwise force blanket suppressions on the charge rules.
    """
    if isinstance(test, ast.Constant):
        return not test.value
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _pruned_nodes(node: ast.AST) -> tuple[ast.AST, ...]:
    """Subtree nodes excluding statically-dead ``if`` bodies (cached).

    The else branch of a dead conditional *does* run and stays included.
    """
    cached = getattr(node, "_repro_pruned", None)
    if cached is None:
        out = []
        stack = [node]
        while stack:
            n = stack.pop()
            out.append(n)
            if isinstance(n, ast.If) and _never_true(n.test):
                stack.extend(n.orelse)
                continue
            stack.extend(ast.iter_child_nodes(n))
        cached = tuple(out)
        node._repro_pruned = cached
    return cached


def _import_table(sf: "SourceFile") -> dict[str, str]:
    """Local name -> dotted import target, for one module."""
    table: dict[str, str] = {}
    for node in sf.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


class CallGraph:
    """Indexes every function/class in a :class:`Project` and their calls."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._by_bare_class: dict[str, list[ClassInfo]] = {}
        self._by_func_name: dict[str, list[FunctionInfo]] = {}
        self._imports: dict[str, dict[str, str]] = {}
        for sf in project.files:
            self._imports[sf.module] = _import_table(sf)
            self._index_file(sf)
        for ci in self.classes.values():
            self._infer_attr_types(ci)
        for fi in self.functions.values():
            self._extract_calls(fi)
        self._charging: set[str] | None = None

    # ------------------------------------------------------------- indexing
    def _index_file(self, sf: "SourceFile") -> None:
        for node in sf.tree.body:
            if isinstance(node, ast.ClassDef):
                ci = ClassInfo(sf, node)
                self.classes[ci.qualname] = ci
                self._by_bare_class.setdefault(ci.name, []).append(ci)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fi = FunctionInfo(sf, item, ci)
                        ci.methods[fi.name] = fi
                        self.functions[fi.qualname] = fi
                        self._by_func_name.setdefault(fi.name, []).append(fi)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi = FunctionInfo(sf, node, None)
                self.functions[fi.qualname] = fi
                self._by_func_name.setdefault(fi.name, []).append(fi)

    # ------------------------------------------------------ class resolution
    def resolve_class(self, module: str, name: str | None) -> ClassInfo | None:
        """Resolve a (possibly dotted) class name as seen from ``module``."""
        if not name:
            return None
        table = self._imports.get(module, {})
        head, _, rest = name.partition(".")
        target = table.get(head)
        if target:
            dotted = f"{target}.{rest}" if rest else target
            if dotted in self.classes:
                return self.classes[dotted]
        if f"{module}.{name}" in self.classes:
            return self.classes[f"{module}.{name}"]
        candidates = self._by_bare_class.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def bases_of(self, ci: ClassInfo) -> list[ClassInfo]:
        out = []
        for bn in ci.base_names:
            base = self.resolve_class(ci.sf.module, bn)
            if base is not None:
                out.append(base)
        return out

    def mro(self, ci: ClassInfo) -> list[ClassInfo]:
        """Linearized base chain (BFS; good enough for this tree)."""
        seen, order, queue = {ci.qualname}, [ci], list(self.bases_of(ci))
        while queue:
            nxt = queue.pop(0)
            if nxt.qualname in seen:
                continue
            seen.add(nxt.qualname)
            order.append(nxt)
            queue.extend(self.bases_of(nxt))
        return order

    def derives_from(self, ci: ClassInfo, base_name: str) -> bool:
        """Whether ``ci`` (transitively) names ``base_name`` as a base."""
        for ancestor in self.mro(ci):
            if ancestor.name == base_name:
                return True
            # Also match bases outside the analyzed tree by raw name
            # ("random.Random" matching base_name "Random").
            for bn in ancestor.base_names:
                if bn and bn.split(".")[-1] == base_name:
                    return True
        return False

    def resolve_method(self, ci: ClassInfo, name: str) -> FunctionInfo | None:
        for ancestor in self.mro(ci):
            if name in ancestor.methods:
                return ancestor.methods[name]
        return None

    # ----------------------------------------------------- attr-type inference
    def _infer_attr_types(self, ci: ClassInfo) -> None:
        for fi in ci.methods.values():
            params = {a.arg: _annotation_class_name(a.annotation)
                      for a in fi.node.args.args}
            for stmt in subtree_nodes(fi.node):
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                cls_name = None
                if isinstance(stmt, ast.AnnAssign):
                    cls_name = _annotation_class_name(stmt.annotation)
                if cls_name is None and isinstance(value, ast.Call):
                    cls_name = _dotted(value.func)
                if cls_name is None and isinstance(value, ast.Name):
                    cls_name = params.get(value.id)
                resolved = self.resolve_class(ci.sf.module, cls_name)
                if resolved is not None:
                    ci.attr_types.setdefault(target.attr, resolved.qualname)

    # --------------------------------------------------------- call extraction
    def _local_types(self, fi: FunctionInfo) -> dict[str, str]:
        """Variable name -> class qualname inside one function body."""
        module = fi.sf.module
        types: dict[str, str] = {}
        args = fi.node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ci = self.resolve_class(module, _annotation_class_name(a.annotation))
            if ci is not None:
                types[a.arg] = ci.qualname
        for stmt in subtree_nodes(fi.node):
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target, value = stmt.targets[0].id, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                ci = self.resolve_class(module, _annotation_class_name(stmt.annotation))
                if ci is not None:
                    types[stmt.target.id] = ci.qualname
                continue
            if target is None:
                continue
            if isinstance(value, ast.Call):
                ci = self.resolve_class(module, _dotted(value.func))
                if ci is not None:
                    types[target] = ci.qualname
            elif isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name) \
                    and value.value.id == "self" and fi.cls is not None:
                attr_cls = fi.cls.attr_types.get(value.attr)
                if attr_cls is not None:
                    types[target] = attr_cls
        return types

    def _extract_calls(self, fi: FunctionInfo) -> None:
        module = fi.sf.module
        local_types = self._local_types(fi)
        for node in _pruned_nodes(fi.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if is_charge_name(func.id):
                    fi.direct_charge = True
                target = self._imports[module].get(func.id, f"{module}.{func.id}")
                mod, _, base = target.rpartition(".")
                qual = f"{mod}:{base}" if mod else None
                if qual in self.functions:
                    fi.precise.add(qual)
                else:
                    ci = self.resolve_class(module, func.id)
                    if ci is not None and "__init__" in ci.methods:
                        fi.precise.add(ci.methods["__init__"].qualname)
                continue
            if not isinstance(func, ast.Attribute):
                continue
            attr = func.attr
            if is_charge_name(attr):
                fi.direct_charge = True
            receiver = func.value
            target_cls: ClassInfo | None = None
            if isinstance(receiver, ast.Name):
                if receiver.id == "self" and fi.cls is not None:
                    target_cls = fi.cls
                elif receiver.id in local_types:
                    target_cls = self.classes[local_types[receiver.id]]
            elif isinstance(receiver, ast.Call) and isinstance(receiver.func, ast.Name) \
                    and receiver.func.id == "super" and fi.cls is not None:
                for base in self.bases_of(fi.cls):
                    resolved = self.resolve_method(base, attr)
                    if resolved is not None:
                        fi.precise.add(resolved.qualname)
                        break
                continue
            elif isinstance(receiver, ast.Attribute) and isinstance(receiver.value, ast.Name) \
                    and receiver.value.id == "self" and fi.cls is not None:
                attr_cls = fi.cls.attr_types.get(receiver.attr)
                if attr_cls is not None:
                    target_cls = self.classes[attr_cls]
            if target_cls is not None:
                resolved = self.resolve_method(target_cls, attr)
                if resolved is not None:
                    fi.precise.add(resolved.qualname)
                else:
                    fi.loose.add(attr)
            else:
                fi.loose.add(attr)

    # ------------------------------------------------------------ reachability
    def _callees(self, fi: FunctionInfo, precise_only: bool) -> Iterable[FunctionInfo]:
        for qual in fi.precise:
            yield self.functions[qual]
        if not precise_only:
            for name in fi.loose:
                yield from self._by_func_name.get(name, ())

    def reachable(self, start: FunctionInfo, precise_only: bool = False) -> set[str]:
        """Qualnames reachable from ``start`` (inclusive)."""
        seen = {start.qualname}
        queue = [start]
        while queue:
            fi = queue.pop()
            for callee in self._callees(fi, precise_only):
                if callee.qualname not in seen:
                    seen.add(callee.qualname)
                    queue.append(callee)
        return seen

    def charging_functions(self) -> set[str]:
        """Qualnames that (transitively, precise+loose) charge the clock."""
        if self._charging is None:
            charging = {q for q, fi in self.functions.items() if fi.direct_charge}
            changed = True
            while changed:
                changed = False
                for qual, fi in self.functions.items():
                    if qual in charging:
                        continue
                    for callee in self._callees(fi, precise_only=False):
                        if callee.qualname in charging:
                            charging.add(qual)
                            changed = True
                            break
            self._charging = charging
        return self._charging
