"""``layering`` — the package DAG is load-bearing, enforce it.

The tree layers strictly: ``sim`` (clock/costs/trace/rng) knows nothing
above it, ``fs`` builds on ``sim`` only, and the harness packages
(``xfstests``/``bench``/``stress``) are leaves nothing imports.  The checker
enforces three properties over the import graph:

* **order** — a module's *module-scope* imports may only name layers at or
  below its own (deferred, function-local imports are exempt from ordering:
  they express a deliberate late binding, like the kernel registering the
  FUSE device driver at boot);
* **hard bans** — some edges are wrong even deferred (``fs`` importing
  ``fuse``/``container``/``kernel`` would invert the paper's architecture);
  these apply to every import statement wherever it sits;
* **acyclicity** — the module-scope import graph must contain no cycles.
"""

from __future__ import annotations

import ast

from repro.analyze.core import Project, Reporter, SourceFile, rule, subtree_nodes


def _imports_of(sf: SourceFile):
    """Yield ``(node, dotted-target, toplevel)`` for every import statement."""
    toplevel_nodes = set()
    for node in sf.walk():
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in subtree_nodes(node):
                if isinstance(inner, (ast.Import, ast.ImportFrom)):
                    toplevel_nodes.add(id(inner))
    # toplevel_nodes currently holds *function-local* imports; invert below.
    for node in sf.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name, id(node) not in toplevel_nodes
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            # ``from pkg.kernel import b`` binds the *submodule* pkg.kernel.b
            # when one exists; yield the per-alias target so submodule edges
            # (and hence cycles through them) resolve precisely.
            for alias in node.names:
                yield (node, f"{node.module}.{alias.name}",
                       id(node) not in toplevel_nodes)


def _layer_of(module: str, layers: tuple[str, ...]) -> int | None:
    for i, prefix in enumerate(layers):
        if module == prefix or module.startswith(prefix + "."):
            return i
    return None


@rule("layering",
      "module-scope imports must respect the package layer order; "
      "hard-banned edges and import cycles are rejected outright")
def check(project: Project, reporter: Reporter) -> None:
    config = project.config
    modules = set(project.by_module)
    toplevel_edges: dict[str, set[str]] = {m: set() for m in project.by_module}

    def target_module(dotted: str) -> str | None:
        """Map an import target onto an analyzed module, if it is one."""
        if dotted in modules:
            return dotted
        parent, _, _ = dotted.rpartition(".")
        return parent if parent in modules else None

    for sf in project.files:
        my_layer = _layer_of(sf.module, config.layers)
        for node, dotted, toplevel in _imports_of(sf):
            target = target_module(dotted)
            if target is None or target == sf.module:
                continue
            if toplevel:
                toplevel_edges[sf.module].add(target)
            # Hard bans apply to deferred imports too.
            for importer_prefix, banned in config.hard_bans:
                if (sf.module == importer_prefix
                        or sf.module.startswith(importer_prefix + ".")):
                    for b in banned:
                        if target == b or target.startswith(b + "."):
                            reporter.report(
                                sf, node, "layering",
                                f"{sf.module} must never import {target} "
                                f"(hard ban: {importer_prefix} -> {b})")
            if toplevel and my_layer is not None:
                target_layer = _layer_of(target, config.layers)
                if target_layer is not None and target_layer > my_layer:
                    reporter.report(
                        sf, node, "layering",
                        f"{sf.module} (layer {config.layers[my_layer]}) imports "
                        f"{target} (layer {config.layers[target_layer]}) at module "
                        f"scope — higher-layer imports must be deferred or removed")

    # Cycle detection over module-scope edges (iterative Tarjan SCC).
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = iter(range(1 << 30))

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(toplevel_edges[root])))]
        index[root] = low[root] = next(counter)
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = next(counter)
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(toplevel_edges[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1:
                    cycle = " -> ".join(sorted(scc))
                    sf = project.by_module[sorted(scc)[0]]
                    reporter.report(sf, 1, "layering",
                                    f"module-scope import cycle: {cycle}")

    for m in sorted(modules):
        if m not in index:
            strongconnect(m)
