"""``errno-discipline`` / ``hook-super`` — syscall errors carry errnos,
lifecycle hooks compose.

Every error that escapes a syscall path surfaces to callers as an errno
(``exc.errno == errno.ENOENT``); a bare ``OSError``/``Exception`` on that
path either crashes a harness that expected ``FsError`` or — worse — gets
caught by a blanket handler and mapped to the wrong errno.  The rule bans
raising the OSError family and the catch-alls inside the syscall-path
layers; ``ValueError``/``TypeError``/``AssertionError`` stay legal for
internal programming-contract guards that should never escape.

``hook-super`` guards the crash model's composition: ``Filesystem.crash``/
``remount``/``_inode_released`` stack behaviour across the class hierarchy
(base drops locks/pins/dentries, subclasses add journal replay, cache
wipes, ...), so an override that forgets ``super()`` silently sheds the
base layer's semantics.  Every override of a lifecycle hook must contain a
``super().<hook>()`` call.
"""

from __future__ import annotations

import ast

from repro.analyze.core import Project, Reporter, rule, subtree_nodes


def _raised_name(node: ast.Raise) -> str | None:
    """The base name of the raised exception, or None for re-raises."""
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    # FsError.enoent(...) -> the *value* is FsError; plain Name -> itself.
    while isinstance(exc, ast.Attribute):
        exc = exc.value
    if isinstance(exc, ast.Name):
        return exc.id
    return None


@rule("errno-discipline",
      "raises on syscall-path layers must use the errno-carrying error type")
def check_errno(project: Project, reporter: Reporter) -> None:
    config = project.config
    graph = project.callgraph
    banned = set(config.banned_exceptions)

    def allowed(sf, name: str) -> bool:
        if name == config.errno_base:
            return True
        ci = graph.resolve_class(sf.module, name)
        return ci is not None and graph.derives_from(ci, config.errno_base)

    for sf in project.files:
        if not any(sf.module == p or sf.module.startswith(p + ".")
                   for p in config.errno_layers):
            continue
        for node in sf.walk():
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name is None or name not in banned:
                continue
            if allowed(sf, name):
                continue
            reporter.report(
                sf, node, "errno-discipline",
                f"raise {name} on a syscall path — use {config.errno_base} "
                f"(fs/errors.py) so callers get a POSIX errno")


@rule("hook-super",
      "Filesystem lifecycle-hook overrides must delegate to super()")
def check_hooks(project: Project, reporter: Reporter) -> None:
    config = project.config
    graph = project.callgraph
    for qualname in sorted(graph.classes):
        ci = graph.classes[qualname]
        if ci.name == config.hook_base or not graph.derives_from(ci, config.hook_base):
            continue
        for hook in config.lifecycle_hooks:
            fi = ci.methods.get(hook)
            if fi is None:
                continue
            delegates = any(
                isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
                and n.func.attr == hook
                and isinstance(n.func.value, ast.Call)
                and isinstance(n.func.value.func, ast.Name)
                and n.func.value.func.id == "super"
                for n in subtree_nodes(fi.node))
            if not delegates:
                reporter.report(
                    fi.sf, fi.node, "hook-super",
                    f"{ci.name}.{hook} overrides a lifecycle hook without "
                    f"calling super().{hook}() — the base class's crash/"
                    f"release semantics are silently dropped")
