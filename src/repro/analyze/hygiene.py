"""``timer-discard`` / ``rng-hygiene`` — crash-safe timers, substream RNG.

**Timers.**  A :class:`ClockTimer` armed on the shared virtual clock
outlives the component that armed it unless someone cancels it: PR 6's
crash model hit exactly this (a crashed filesystem's kupdate timer firing
on the next advance of the *booted* kernel's clock).  The rule requires
that any class storing a ``clock.schedule(...)`` result keeps a cancel
path: every ``self.<attr> = ....schedule(...)`` assignment must be matched
by a ``self.<attr>.cancel()`` somewhere in the same class, and a
``schedule`` result must never be discarded outright.

**RNG.**  All randomness flows from ``DeterministicRandom`` and its
``substream`` derivation; ad-hoc ``random.Random(...)`` instances and
mid-run ``.seed(...)`` calls (which desynchronize a stream from its
substream derivation) are banned outside the RNG module itself.
"""

from __future__ import annotations

import ast

from repro.analyze.core import Project, Reporter, SourceFile, rule, subtree_nodes


def _is_schedule_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == "schedule")


@rule("timer-discard",
      "stored ClockTimer registrations need a cancel path; schedule results "
      "must not be discarded")
def check_timers(project: Project, reporter: Reporter) -> None:
    for sf in project.files:
        for cls in sf.walk():
            if not isinstance(cls, ast.ClassDef):
                continue
            stored: list[tuple[ast.AST, str]] = []
            cancelled: set[str] = set()
            for node in subtree_nodes(cls):
                if isinstance(node, ast.Assign) and _is_schedule_call(node.value):
                    for t in node.targets:
                        if isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name) \
                                and t.value.id == "self":
                            stored.append((node, t.attr))
                elif isinstance(node, ast.Expr) and _is_schedule_call(node.value):
                    reporter.report(
                        sf, node, "timer-discard",
                        "clock.schedule(...) result discarded — keep the "
                        "ClockTimer so a crash path can cancel it")
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "cancel":
                    recv = node.func.value
                    if isinstance(recv, ast.Attribute) and isinstance(recv.value, ast.Name) \
                            and recv.value.id == "self":
                        cancelled.add(recv.attr)
            for node, attr in stored:
                if attr not in cancelled:
                    reporter.report(
                        sf, node, "timer-discard",
                        f"self.{attr} holds a ClockTimer but the class never "
                        f"calls self.{attr}.cancel() — crashed components must "
                        f"disarm their timers (see WritebackEngine.crash_discard)")


@rule("rng-hygiene",
      "randomness flows from DeterministicRandom substreams; raw Random "
      "instances and mid-run reseeding are banned")
def check_rng(project: Project, reporter: Reporter) -> None:
    config = project.config
    for sf in project.files:
        if sf.module in config.rng_modules:
            continue
        _check_rng_file(sf, reporter, config.rng_class)


def _check_rng_file(sf: SourceFile, reporter: Reporter, rng_class: str) -> None:
    for node in sf.walk():
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "seed":
                reporter.report(
                    sf, node, "rng-hygiene",
                    f"mid-run .seed(...) desynchronizes a stream from its "
                    f"substream derivation — construct a fresh "
                    f"{rng_class} or use .substream(name)")
            elif func.attr in ("Random", "SystemRandom") and \
                    isinstance(func.value, ast.Name) and func.value.id == "random":
                reporter.report(
                    sf, node, "rng-hygiene",
                    f"ad-hoc random.{func.attr}() instance — all randomness "
                    f"must flow from {rng_class}")
        elif isinstance(func, ast.Name) and func.id in ("Random", "SystemRandom"):
            reporter.report(
                sf, node, "rng-hygiene",
                f"ad-hoc {func.id}() instance — all randomness must flow "
                f"from {rng_class}")
