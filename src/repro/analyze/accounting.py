"""``clock-accounting`` — syscall paths must charge the virtual clock.

Virtual time is the simulator's currency: results are comparable across
machines only because every modelled kernel action pays an explicit cost
via ``VirtualClock.advance`` (usually through a ``_charge_*`` helper).
Two dual failure modes exist:

* a syscall entry point mutates fs/page-cache/writeback state but no charge
  is reachable from it — free work, silently deflating virtual time;
* a documented zero-virtual-time path (journal clean-path bookkeeping, the
  dentry-cache's warm-cost-only rule) grows a route to ``advance`` — hidden
  work, silently inflating virtual time and moving every bench pin.

Both directions run over the project call graph (:mod:`.callgraph`):
the must-charge check follows precise *and* loose (name-matched) edges, so
a charge anywhere plausibly reachable counts and false positives stay rare;
the must-not-charge check follows only precise edges, so a bare name
collision cannot manufacture a violation.
"""

from __future__ import annotations

import fnmatch

from repro.analyze.callgraph import CallGraph, FunctionInfo
from repro.analyze.core import Project, Reporter, rule


def _entry_points(graph: CallGraph, entry_classes: tuple[str, ...]):
    for ci in graph.classes.values():
        if ci.name not in entry_classes:
            continue
        for name, fi in sorted(ci.methods.items()):
            if not name.startswith("_"):
                yield fi


def _class_method(fi: FunctionInfo) -> str | None:
    return f"{fi.cls.name}.{fi.name}" if fi.cls else None


@rule("clock-accounting",
      "syscall entry points that mutate state must reach a clock charge; "
      "documented zero-cost paths must not")
def check(project: Project, reporter: Reporter) -> None:
    graph = project.callgraph
    config = project.config
    mutators = set(config.mutators)
    charging = graph.charging_functions()

    # Direction 1: every public entry-class method reaching a state mutator
    # must also reach a charge.
    for entry in _entry_points(graph, config.entry_classes):
        reached = graph.reachable(entry, precise_only=False)
        hit = sorted(
            cm for qual in reached
            if (cm := _class_method(graph.functions[qual])) in mutators)
        if not hit:
            continue
        if not any(qual in charging for qual in reached):
            reporter.report(
                entry.sf, entry.node, "clock-accounting",
                f"syscall entry point {entry.cls.name}.{entry.name} can reach "
                f"state mutation ({hit[0]}) but no VirtualClock charge — "
                f"uncharged kernel work deflates virtual time")

    # Direction 2: zero-virtual-time paths must never reach a charge
    # (precise edges only: a loose name match must not convict).
    for _qual, fi in sorted(graph.functions.items()):
        cm = _class_method(fi)
        if cm is None or not any(fnmatch.fnmatch(cm, pat) for pat in config.zero_cost):
            continue
        for reached_qual in sorted(graph.reachable(fi, precise_only=True)):
            if graph.functions[reached_qual].direct_charge:
                where = _class_method(graph.functions[reached_qual]) \
                    or graph.functions[reached_qual].name
                reporter.report(
                    fi.sf, fi.node, "clock-accounting",
                    f"{cm} is documented zero-virtual-time but reaches a clock "
                    f"charge via {where} — hidden cost would move every bench pin")
                break
