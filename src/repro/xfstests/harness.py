"""xfstests harness: test registry, environments and the runner."""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass, field
from typing import Callable

from repro.core.cntrfs import CntrFS
from repro.fs.constants import OpenFlags
from repro.fs.errors import FsError
from repro.fs.tmpfs import TmpFS
from repro.fuse.client import FuseClientFs
from repro.fuse.device import FuseDeviceHandle
from repro.fuse.options import FuseMountOptions
from repro.kernel.machine import Machine, boot
from repro.kernel.syscalls import Syscalls

_env_counter = itertools.count(1)


class TestFailure(AssertionError):
    """Raised by a test when an expectation is violated."""


class TestNotSupported(Exception):
    """Raised by a test when the filesystem under test lacks a required feature.

    xfstests reports these as "notrun"; the paper's accounting counts the four
    CntrFS-specific cases as failures of the full generic group, so the runner
    can be configured either way.
    """


@dataclass(frozen=True)
class TestCase:
    """One registered generic test."""

    number: int
    name: str
    groups: tuple[str, ...]
    func: Callable[["TestEnvironment"], None]

    @property
    def test_id(self) -> str:
        """xfstests-style identifier, e.g. ``generic/375``."""
        return f"generic/{self.number:03d}"


@dataclass
class TestResult:
    """Outcome of one test."""

    case: TestCase
    status: str              # "pass" | "fail" | "notrun"
    message: str = ""

    @property
    def passed(self) -> bool:
        """True when the test passed."""
        return self.status == "pass"


class TestEnvironment:
    """What a generic test gets to work with."""

    def __init__(self, name: str, machine: Machine, sc: Syscalls, test_dir: str,
                 scratch_dir: str, fs_under_test, is_cntrfs: bool) -> None:
        self.name = name
        self.machine = machine
        self.sc = sc
        self.test_dir = test_dir
        self.scratch_dir = scratch_dir
        self.fs_under_test = fs_under_test
        self.is_cntrfs = is_cntrfs

    # ------------------------------------------------------------- helpers
    def path(self, relative: str) -> str:
        """Absolute path inside the test directory."""
        return f"{self.test_dir}/{relative.lstrip('/')}"

    def scratch(self, relative: str) -> str:
        """Absolute path inside the scratch directory."""
        return f"{self.scratch_dir}/{relative.lstrip('/')}"

    def unique_name(self, prefix: str = "f") -> str:
        """A name guaranteed unique within this environment."""
        return f"{prefix}-{next(_env_counter)}"

    def create_file(self, path: str, content: bytes = b"", mode: int = 0o644) -> None:
        """Create a file with the given content."""
        fd = self.sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY |
                          OpenFlags.O_TRUNC, mode)
        try:
            if content:
                self.sc.write(fd, content)
        finally:
            self.sc.close(fd)

    def read_file(self, path: str, size: int = 1 << 22) -> bytes:
        """Read a whole file."""
        fd = self.sc.open(path, OpenFlags.O_RDONLY)
        try:
            return self.sc.read(fd, size)
        finally:
            self.sc.close(fd)

    # ------------------------------------------------------------- crash model
    def make_durable(self) -> None:
        """``sync`` the filesystem under test: everything before this call is
        on stable storage and must survive a subsequent :meth:`power_fail`.

        Crash cases in the shared environment call this first so state left
        behind by *earlier* cases is pinned down before the power goes out.
        """
        self.fs_under_test.sync()

    def power_fail(self) -> None:
        """Power-fail the filesystem under test and bring it back.

        Native ext4 drops its volatile state and replays the journal; the
        CntrFS client loses its writeback cache (the backing store and server
        survive — the container-crash scenario the paper's consistency
        trade-off is about).  The mount is usable again on return.
        """
        self.fs_under_test.crash()
        self.fs_under_test.remount()

    # ------------------------------------------------------------- assertions
    def check(self, condition: bool, message: str) -> None:
        """Fail the test when ``condition`` is false."""
        if not condition:
            raise TestFailure(message)

    def check_equal(self, actual, expected, message: str = "") -> None:
        """Fail unless ``actual == expected``."""
        if actual != expected:
            raise TestFailure(f"{message or 'mismatch'}: got {actual!r}, "
                              f"expected {expected!r}")

    def check_errno(self, errno_value: int, func, *args, **kwargs) -> None:
        """Fail unless calling ``func`` raises FsError with ``errno_value``."""
        try:
            func(*args, **kwargs)
        except FsError as exc:
            if exc.errno != errno_value:
                raise TestFailure(f"expected errno {errno_value}, got {exc.errno} "
                                  f"({exc})") from exc
            return
        raise TestFailure(f"expected errno {errno_value}, but the call succeeded")


# ---------------------------------------------------------------------------
# Environment builders
# ---------------------------------------------------------------------------
def native_environment(machine: Machine | None = None) -> TestEnvironment:
    """Tests run directly against the native ext4-like filesystem (baseline)."""
    from repro.fs.ext4 import Ext4Fs

    machine = machine or boot()
    sc = machine.spawn_host_process(["/usr/bin/xfstests", "native"])
    backing = Ext4Fs("xfstests-ext4", machine.kernel.clock, machine.kernel.costs,
                     machine.kernel.tracer)
    sc.makedirs("/mnt/test")
    sc.mount(backing, "/mnt/test")
    sc.makedirs("/mnt/test/testdir")
    sc.makedirs("/mnt/test/scratch")
    return TestEnvironment(name="ext4-native", machine=machine, sc=sc,
                           test_dir="/mnt/test/testdir",
                           scratch_dir="/mnt/test/scratch",
                           fs_under_test=backing, is_cntrfs=False)


def cntrfs_environment(machine: Machine | None = None,
                       options: FuseMountOptions | None = None) -> TestEnvironment:
    """Tests run against CntrFS mounted on top of tmpfs (the paper's setup)."""
    machine = machine or boot()
    kernel = machine.kernel

    # The backing store: a tmpfs mounted on the host, served by CntrFS.
    host_sc = machine.spawn_host_process(["/usr/bin/xfstests", "cntrfs-server"])
    backing = TmpFS("xfstests-backing-tmpfs", kernel.clock, kernel.costs, kernel.tracer)
    host_sc.makedirs("/mnt/backing")
    host_sc.mount(backing, "/mnt/backing")
    host_sc.makedirs("/mnt/backing/testdir")
    host_sc.makedirs("/mnt/backing/scratch")

    # The CntrFS server exports the backing mount; the client mounts it elsewhere.
    fuse_fd = host_sc.open("/dev/fuse", OpenFlags.O_RDWR)
    handle = host_sc.process.get_fd(fuse_fd)
    assert isinstance(handle, FuseDeviceHandle)
    export_root = kernel.vfs.resolve(
        host_sc._ctx(), "/mnt/backing")  # noqa: SLF001 - harness-internal use
    server = CntrFS(kernel, host_sc.process, export_root=export_root)
    handle.connection.attach_server(server)

    client_sc = machine.spawn_host_process(["/usr/bin/xfstests", "cntrfs-client"])
    client = FuseClientFs("xfstests-cntrfs", kernel.clock, kernel.costs,
                          handle.connection,
                          options=options or FuseMountOptions.paper_defaults(),
                          tracer=kernel.tracer)
    client_sc.makedirs("/mnt/cntr")
    client_sc.mount(client, "/mnt/cntr")
    return TestEnvironment(name="cntrfs-over-tmpfs", machine=machine, sc=client_sc,
                           test_dir="/mnt/cntr/testdir",
                           scratch_dir="/mnt/cntr/scratch",
                           fs_under_test=client, is_cntrfs=True)


class EnvironmentSnapshot:
    """A booted :class:`TestEnvironment` frozen for cheap per-case cloning.

    Building an environment boots a machine, spawns processes and mounts the
    filesystem under test — ~2-3x the cost of deep-copying the finished object
    graph.  The snapshot captures the environment once through
    :meth:`repro.kernel.kernel.Kernel.snapshot` (the environment rides along
    as a companion so its syscall handles stay wired to the cloned kernel);
    every :meth:`fork` then yields an independent pristine environment whose
    virtual clock, RNG streams and filesystem state match a fresh build
    exactly.
    """

    def __init__(self, env: TestEnvironment) -> None:
        self.source_name = env.name
        self._snap = env.machine.kernel.snapshot(env)

    @property
    def forks(self) -> int:
        """How many clones have been taken so far."""
        return self._snap.forks

    def fork(self) -> TestEnvironment:
        """An independent clone of the snapshotted environment."""
        _kernel, (env,) = self._snap.fork()
        return env


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
@dataclass
class RunSummary:
    """Aggregate result of one xfstests run."""

    environment: str
    results: list[TestResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of tests executed."""
        return len(self.results)

    @property
    def passed(self) -> int:
        """Number of passing tests."""
        return sum(1 for r in self.results if r.status == "pass")

    @property
    def failed(self) -> int:
        """Number of failing tests."""
        return sum(1 for r in self.results if r.status == "fail")

    @property
    def notrun(self) -> int:
        """Number of skipped tests."""
        return sum(1 for r in self.results if r.status == "notrun")

    @property
    def pass_rate(self) -> float:
        """Fraction of tests that passed."""
        return self.passed / self.total if self.total else 0.0

    def failing_ids(self) -> list[str]:
        """xfstests identifiers of the non-passing tests."""
        return [r.case.test_id for r in self.results if r.status != "pass"]

    def format_table(self) -> str:
        """Render a short report like the one in EXPERIMENTS.md."""
        lines = [f"xfstests generic group on {self.environment}",
                 f"  passed {self.passed}/{self.total} "
                 f"({self.pass_rate * 100:.2f}%), failed {self.failed}, "
                 f"not run {self.notrun}"]
        for result in self.results:
            if result.status != "pass":
                lines.append(f"  {result.case.test_id} [{result.status}] "
                             f"{result.case.name}: {result.message}")
        return "\n".join(lines)


class XfstestsRunner:
    """Runs the registered generic tests against one environment."""

    def __init__(self, env_factory: Callable[[], TestEnvironment],
                 fresh_env_per_test: bool = False,
                 snapshot_per_test: bool = True,
                 notrun_counts_as_failure: bool = True) -> None:
        self.env_factory = env_factory
        self.fresh_env_per_test = fresh_env_per_test
        #: Clone each case's environment from one pre-booted snapshot instead
        #: of sharing a single mutable environment across all cases.  Isolation
        #: of ``fresh_env_per_test`` at a fraction of the wall-clock cost;
        #: ignored when ``fresh_env_per_test`` explicitly asks for re-boots.
        self.snapshot_per_test = snapshot_per_test
        self.notrun_counts_as_failure = notrun_counts_as_failure

    def run(self, cases=None, group: str | None = None) -> RunSummary:
        """Execute the tests and return a summary."""
        from repro.xfstests.generic import GENERIC_TESTS

        cases = list(cases if cases is not None else GENERIC_TESTS)
        if group:
            cases = [c for c in cases if group in c.groups]
        env = None
        snapshot = None
        if not self.fresh_env_per_test:
            env = self.env_factory()
            if self.snapshot_per_test:
                snapshot = EnvironmentSnapshot(env)
        summary = RunSummary(environment=env.name if env else "per-test")
        for case in cases:
            if self.fresh_env_per_test:
                test_env = self.env_factory()
            elif snapshot is not None:
                test_env = snapshot.fork()
            else:
                test_env = env
            assert test_env is not None
            summary.results.append(self._run_one(case, test_env))
        if env is not None:
            summary.environment = env.name
        return summary

    def _run_one(self, case: TestCase, env: TestEnvironment) -> TestResult:
        workdir = f"{env.test_dir}/{case.test_id.replace('/', '-')}"
        try:
            env.sc.makedirs(workdir)
        except FsError:
            pass
        sandboxed = TestEnvironment(name=env.name, machine=env.machine, sc=env.sc,
                                    test_dir=workdir, scratch_dir=env.scratch_dir,
                                    fs_under_test=env.fs_under_test,
                                    is_cntrfs=env.is_cntrfs)
        try:
            case.func(sandboxed)
            return TestResult(case=case, status="pass")
        except TestNotSupported as exc:
            status = "fail" if self.notrun_counts_as_failure else "notrun"
            return TestResult(case=case, status=status, message=str(exc))
        except (TestFailure, FsError) as exc:
            return TestResult(case=case, status="fail", message=str(exc))
        except Exception as exc:  # noqa: BLE001 - report unexpected errors as failures
            return TestResult(case=case, status="fail",
                              message=f"unexpected error: {exc!r}\n"
                                      f"{traceback.format_exc(limit=3)}")
