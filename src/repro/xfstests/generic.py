"""The generic test group: 209 filesystem regression tests.

Each test is registered with an xfstests-style number.  Four of them
(generic/228, generic/375, generic/391, generic/426) reproduce the cases the
paper reports as failing on CntrFS because of deliberate design decisions
(RLIMIT_FSIZE not enforced, ACL-aware setgid clearing delegated to the backing
store, O_DIRECT unsupported in favour of mmap, inodes not exportable by
handle); the remaining 205 pass on both the native filesystem and CntrFS.
Generic 91-114 harden the writeback/caching surface grown by the
memory-pressure model: fsync/fdatasync/O_SYNC durability, the procfs
``drop_caches`` file, truncate-vs-dirty-pages interactions, rename over open
files and sparse hole/extent semantics.  Generic 115-130 pin the reclaim and
read-shaping wave: the page-cache budget under ``MemAvailable``, LRU reclaim
flushing dirty pages before dropping them, ``vfs_cache_pressure`` dcache
shrinking, the ``dirty_writeback_centisecs`` periodic flusher, per-device
``read_ahead_kb`` and read-bandwidth shaping, and sysctl input validation.
Generic 131-146 pin the cgroup memory controller behind the synthetic
``/sys/fs/cgroup``: hierarchical charge/uncharge conservation,
tightest-limit-wins, ``memory.max`` honoured by per-cgroup reclaim
(``max``/0 = unlimited, lowering below usage reclaims synchronously),
deterministic ``memory.high`` write throttling, cross-cgroup isolation,
``cgroup.procs`` migration and EINVAL/EACCES/ESRCH input validation.
Generic 151-165 (group ``locks``) pin POSIX byte-range semantics: disjoint
vs overlapping ranges, read/write compatibility, to-EOF locks, same-owner
upgrade/replace, release on close/unlock, lock identity following the inode
through rename, hard links and unlink, and advisoriness.  Generic 166-185
(group ``crash``) exercise the power-fail + journal-replay engine:
fsync/fdatasync/O_SYNC durability promises, ordered truncate/punch replay
(re-extended gaps read zeros, never stale bytes), compound-transaction
commits, uncommitted-change loss semantics (where ext4 rolls back but
CntrFS's synchronous server keeps state — the paper's delayed-sync
trade-off), timer lifecycle across crashes and double power failures.
Generic 186-203 (group ``stress``) run seeded fsstress-style op soups
checked byte-for-byte against a pure in-memory shadow model, the last six
with a mid-soup power failure audited by a durability ledger.  Generic
204-209 (group ``psi``) pin the observability layer: the /proc/pressure and
per-cgroup pressure files in the Linux PSI format, nanosecond-exact
decomposition of each resource's stall total into its stall-site counters
(cpu: runnable wait + ``cpu.max`` throttling; memory: ``memory.high``
throttling + direct reclaim; io: BDI bandwidth shaping + ``vm.dirty_bytes``
throttling + FUSE queue congestion), /proc/vmstat and per-cgroup ``io.stat``
writeback accounting, and the tracefs control files (``set_event`` filters,
``tracing_on``, the bounded ring's drop counters).
"""

from __future__ import annotations

import contextlib
import errno

from repro.fs.acl import AclTag, PosixAcl
from repro.fs.constants import (
    FallocateMode,
    FileMode,
    LockType,
    OpenFlags,
    RenameFlags,
    SeekWhence,
)
from repro.fs.errors import FsError
from repro.kernel.capabilities import CapabilitySet, KNOWN_CAPABILITIES
from repro.kernel.syscalls import Syscalls
from repro.sim.rng import DeterministicRandom
from repro.xfstests.harness import TestCase, TestEnvironment, TestFailure

#: Registry filled by the @generic decorator.
GENERIC_TESTS: list[TestCase] = []

#: The four tests the paper reports as failing on CntrFS.
PAPER_FAILING_TESTS = ("generic/228", "generic/375", "generic/391", "generic/426")

RW = OpenFlags.O_RDWR
CREAT_RW = OpenFlags.O_CREAT | OpenFlags.O_RDWR
CREAT_WR = OpenFlags.O_CREAT | OpenFlags.O_WRONLY


def generic(number: int, *groups: str):
    """Register a generic test under the given xfstests number."""

    def wrap(func):
        GENERIC_TESTS.append(TestCase(number=number, name=func.__name__,
                                      groups=groups or ("auto", "quick"), func=func))
        return func

    return wrap


def unprivileged(env: TestEnvironment, uid: int = 1000, gid: int = 1000,
                 keep_caps: frozenset[str] = frozenset()) -> Syscalls:
    """A syscall facade for an unprivileged user process."""
    child = env.sc.fork(argv=["/usr/bin/xfstests-unpriv"])
    child.uid = uid
    child.gid = gid
    child.groups = frozenset({gid})
    child.caps = CapabilitySet(effective=keep_caps, permitted=keep_caps,
                               inheritable=frozenset(), bounding=keep_caps)
    return Syscalls(env.machine.kernel, child)


# ---------------------------------------------------------------------------
# Basic create / remove / rename
# ---------------------------------------------------------------------------
@generic(1, "auto", "quick")
def test_create_and_read_back(env):
    path = env.path("file1")
    env.create_file(path, b"hello xfstests")
    env.check_equal(env.read_file(path), b"hello xfstests", "content round trip")


@generic(2, "auto", "quick")
def test_new_file_is_empty(env):
    path = env.path("empty")
    env.create_file(path)
    st = env.sc.stat(path)
    env.check_equal(st.st_size, 0, "new file size")
    env.check(st.is_regular, "new file is regular")


@generic(3, "auto", "quick")
def test_unlink_removes_file(env):
    path = env.path("doomed")
    env.create_file(path, b"x")
    env.sc.unlink(path)
    env.check(not env.sc.exists(path), "file gone after unlink")
    env.check_errno(errno.ENOENT, env.sc.stat, path)


@generic(4, "auto", "quick")
def test_mkdir_rmdir(env):
    path = env.path("subdir")
    env.sc.mkdir(path)
    env.check(env.sc.stat(path).is_dir, "mkdir creates a directory")
    env.sc.rmdir(path)
    env.check(not env.sc.exists(path), "rmdir removes it")


@generic(5, "auto", "quick")
def test_rmdir_nonempty_fails(env):
    path = env.path("nonempty")
    env.sc.mkdir(path)
    env.create_file(f"{path}/child", b"x")
    env.check_errno(errno.ENOTEMPTY, env.sc.rmdir, path)


@generic(6, "auto", "quick")
def test_nested_mkdir(env):
    path = env.path("a/b/c/d/e")
    env.sc.makedirs(path)
    env.check(env.sc.stat(path).is_dir, "deep path exists")
    env.create_file(f"{path}/leaf", b"leaf")
    env.check_equal(env.read_file(f"{path}/leaf"), b"leaf")


@generic(7, "auto", "quick")
def test_rename_same_directory(env):
    old, new = env.path("old"), env.path("new")
    env.create_file(old, b"data")
    env.sc.rename(old, new)
    env.check(not env.sc.exists(old), "old name gone")
    env.check_equal(env.read_file(new), b"data")


@generic(8, "auto", "quick")
def test_rename_across_directories(env):
    env.sc.makedirs(env.path("src"))
    env.sc.makedirs(env.path("dst"))
    env.create_file(env.path("src/f"), b"move me")
    env.sc.rename(env.path("src/f"), env.path("dst/f"))
    env.check_equal(env.read_file(env.path("dst/f")), b"move me")
    env.check(not env.sc.exists(env.path("src/f")), "source entry removed")


@generic(9, "auto", "quick")
def test_rename_replaces_target(env):
    a, b = env.path("a"), env.path("b")
    env.create_file(a, b"AAA")
    env.create_file(b, b"BBB")
    env.sc.rename(a, b)
    env.check_equal(env.read_file(b), b"AAA", "target replaced by source")


@generic(10, "auto", "quick")
def test_rename_noreplace(env):
    a, b = env.path("nr-a"), env.path("nr-b")
    env.create_file(a, b"A")
    env.create_file(b, b"B")
    env.check_errno(errno.EEXIST, env.sc.rename, a, b, RenameFlags.RENAME_NOREPLACE)
    env.check_equal(env.read_file(b), b"B", "target untouched")


@generic(11, "auto", "quick")
def test_rename_exchange(env):
    a, b = env.path("xa"), env.path("xb")
    env.create_file(a, b"first")
    env.create_file(b, b"second")
    env.sc.rename(a, b, RenameFlags.RENAME_EXCHANGE)
    env.check_equal(env.read_file(a), b"second", "exchange swapped a")
    env.check_equal(env.read_file(b), b"first", "exchange swapped b")


@generic(12, "auto", "quick")
def test_rename_directory(env):
    env.sc.makedirs(env.path("dir-old/inner"))
    env.create_file(env.path("dir-old/inner/f"), b"deep")
    env.sc.rename(env.path("dir-old"), env.path("dir-new"))
    env.check_equal(env.read_file(env.path("dir-new/inner/f")), b"deep")
    env.check(not env.sc.exists(env.path("dir-old")), "old directory gone")


# ---------------------------------------------------------------------------
# Hard links and symlinks
# ---------------------------------------------------------------------------
@generic(13, "auto", "quick")
def test_hardlink_shares_inode(env):
    a, b = env.path("hl-a"), env.path("hl-b")
    env.create_file(a, b"linked")
    env.sc.link(a, b)
    st_a, st_b = env.sc.stat(a), env.sc.stat(b)
    env.check_equal(st_a.st_ino, st_b.st_ino, "same inode")
    env.check_equal(st_a.st_nlink, 2, "nlink incremented")
    env.check_equal(env.read_file(b), b"linked")


@generic(14, "auto", "quick")
def test_unlink_one_hardlink(env):
    a, b = env.path("hl2-a"), env.path("hl2-b")
    env.create_file(a, b"keep")
    env.sc.link(a, b)
    env.sc.unlink(a)
    env.check_equal(env.read_file(b), b"keep", "survives unlink of other name")
    env.check_equal(env.sc.stat(b).st_nlink, 1, "nlink back to 1")


@generic(15, "auto", "quick")
def test_hardlink_to_directory_forbidden(env):
    env.sc.mkdir(env.path("hl-dir"))
    env.check_errno(errno.EPERM, env.sc.link, env.path("hl-dir"), env.path("hl-dir2"))


@generic(16, "auto", "quick")
def test_symlink_and_readlink(env):
    target, link = env.path("target"), env.path("link")
    env.create_file(target, b"pointed at")
    env.sc.symlink(target, link)
    env.check_equal(env.sc.readlink(link), target, "readlink returns target")
    env.check(env.sc.lstat(link).is_symlink, "lstat sees the link itself")


@generic(17, "auto", "quick")
def test_symlink_resolution(env):
    target, link = env.path("t2"), env.path("l2")
    env.create_file(target, b"via symlink")
    env.sc.symlink(target, link)
    env.check_equal(env.read_file(link), b"via symlink", "open follows the link")
    env.check_equal(env.sc.stat(link).st_size, len(b"via symlink"))


@generic(18, "auto", "quick")
def test_dangling_symlink(env):
    link = env.path("dangling")
    env.sc.symlink(env.path("does-not-exist"), link)
    env.check(env.sc.lstat(link).is_symlink, "lstat works on dangling link")
    env.check_errno(errno.ENOENT, env.sc.stat, link)


@generic(19, "auto", "quick")
def test_symlink_loop(env):
    a, b = env.path("loop-a"), env.path("loop-b")
    env.sc.symlink(a, b)
    env.sc.symlink(b, a)
    env.check_errno(errno.ELOOP, env.sc.stat, a)


# ---------------------------------------------------------------------------
# open(2) flag semantics
# ---------------------------------------------------------------------------
@generic(20, "auto", "quick")
def test_o_excl(env):
    path = env.path("excl")
    env.create_file(path, b"x")
    env.check_errno(errno.EEXIST, env.sc.open, path,
                    CREAT_RW | OpenFlags.O_EXCL, 0o644)


@generic(21, "auto", "quick")
def test_create_mode_respects_umask(env):
    previous = env.sc.umask(0o077)
    try:
        path = env.path("masked")
        fd = env.sc.open(path, CREAT_WR, 0o666)
        env.sc.close(fd)
        env.check_equal(env.sc.stat(path).permissions & 0o777, 0o600,
                        "umask applied at create")
    finally:
        env.sc.umask(previous)


@generic(22, "auto", "quick")
def test_o_trunc(env):
    path = env.path("trunc")
    env.create_file(path, b"long old content")
    fd = env.sc.open(path, OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
    env.sc.close(fd)
    env.check_equal(env.sc.stat(path).st_size, 0, "O_TRUNC emptied the file")


@generic(23, "auto", "quick")
def test_o_append(env):
    path = env.path("append")
    env.create_file(path, b"start-")
    fd = env.sc.open(path, OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
    env.sc.write(fd, b"end")
    env.sc.close(fd)
    env.check_equal(env.read_file(path), b"start-end", "append lands at EOF")


@generic(24, "auto", "quick")
def test_o_directory_on_file(env):
    path = env.path("notadir")
    env.create_file(path, b"x")
    env.check_errno(errno.ENOTDIR, env.sc.open, path,
                    OpenFlags.O_RDONLY | OpenFlags.O_DIRECTORY)


@generic(25, "auto", "quick")
def test_open_missing_file(env):
    env.check_errno(errno.ENOENT, env.sc.open, env.path("missing"), OpenFlags.O_RDONLY)


@generic(26, "auto", "quick")
def test_open_directory_for_write(env):
    path = env.path("wrdir")
    env.sc.mkdir(path)
    env.check_errno(errno.EISDIR, env.sc.open, path, OpenFlags.O_WRONLY)


@generic(27, "auto", "quick")
def test_write_on_readonly_fd(env):
    path = env.path("ro")
    env.create_file(path, b"x")
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.check_errno(errno.EBADF, env.sc.write, fd, b"nope")
    finally:
        env.sc.close(fd)


@generic(28, "auto", "quick")
def test_read_on_writeonly_fd(env):
    path = env.path("wo")
    env.create_file(path, b"secret")
    fd = env.sc.open(path, OpenFlags.O_WRONLY)
    try:
        env.check_errno(errno.EBADF, env.sc.read, fd, 10)
    finally:
        env.sc.close(fd)


# ---------------------------------------------------------------------------
# Offsets, truncation, sparse files
# ---------------------------------------------------------------------------
@generic(29, "auto", "quick")
def test_lseek_whences(env):
    path = env.path("seek")
    env.create_file(path, b"0123456789")
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.check_equal(env.sc.lseek(fd, 4, SeekWhence.SEEK_SET), 4)
        env.check_equal(env.sc.read(fd, 2), b"45")
        env.check_equal(env.sc.lseek(fd, 2, SeekWhence.SEEK_CUR), 8)
        env.check_equal(env.sc.lseek(fd, -3, SeekWhence.SEEK_END), 7)
        env.check_equal(env.sc.read(fd, 3), b"789")
    finally:
        env.sc.close(fd)


@generic(30, "auto", "quick")
def test_lseek_negative(env):
    path = env.path("seekneg")
    env.create_file(path, b"abc")
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.check_errno(errno.EINVAL, env.sc.lseek, fd, -10, SeekWhence.SEEK_SET)
    finally:
        env.sc.close(fd)


@generic(31, "auto", "quick")
def test_pread_pwrite_do_not_move_offset(env):
    path = env.path("positional")
    env.create_file(path, b"AAAAAAAAAA")
    fd = env.sc.open(path, RW)
    try:
        env.sc.pwrite(fd, b"BB", 4)
        env.check_equal(env.sc.pread(fd, 10, 0), b"AAAABBAAAA")
        env.check_equal(env.sc.read(fd, 4), b"AAAA", "offset still at 0")
    finally:
        env.sc.close(fd)


@generic(32, "auto", "quick")
def test_write_beyond_eof_creates_hole(env):
    path = env.path("hole")
    fd = env.sc.open(path, CREAT_RW)
    try:
        env.sc.pwrite(fd, b"tail", 8192)
        env.check_equal(env.sc.fstat(fd).st_size, 8196, "size covers the hole")
        env.check_equal(env.sc.pread(fd, 4, 0), b"\x00" * 4, "hole reads as zeros")
        env.check_equal(env.sc.pread(fd, 4, 8192), b"tail")
    finally:
        env.sc.close(fd)


@generic(33, "auto", "quick")
def test_truncate_grow(env):
    path = env.path("grow")
    env.create_file(path, b"abc")
    env.sc.truncate(path, 10)
    env.check_equal(env.sc.stat(path).st_size, 10)
    env.check_equal(env.read_file(path), b"abc" + b"\x00" * 7, "growth zero-fills")


@generic(34, "auto", "quick")
def test_truncate_shrink(env):
    path = env.path("shrink")
    env.create_file(path, b"a long piece of content")
    env.sc.truncate(path, 6)
    env.check_equal(env.read_file(path), b"a long")


@generic(35, "auto", "quick")
def test_ftruncate(env):
    path = env.path("ftrunc")
    env.create_file(path, b"1234567890")
    fd = env.sc.open(path, RW)
    try:
        env.sc.ftruncate(fd, 4)
        env.check_equal(env.sc.fstat(fd).st_size, 4)
    finally:
        env.sc.close(fd)


# ---------------------------------------------------------------------------
# stat(2) fields and timestamps
# ---------------------------------------------------------------------------
@generic(36, "auto", "quick")
def test_stat_fields(env):
    path = env.path("statf")
    env.create_file(path, b"0123456789abcdef")
    st = env.sc.stat(path)
    env.check_equal(st.st_size, 16)
    env.check_equal(st.st_nlink, 1)
    env.check(st.st_ino > 0, "inode number assigned")
    env.check(st.st_blksize >= 512, "block size sane")


@generic(37, "auto", "quick")
def test_stat_directory_type(env):
    path = env.path("statd")
    env.sc.mkdir(path)
    st = env.sc.stat(path)
    env.check(st.is_dir, "S_IFDIR set")
    env.check(st.st_nlink >= 2, "directory nlink counts . entry")


@generic(38, "auto", "quick")
def test_lstat_vs_stat_on_symlink(env):
    target, link = env.path("ls-t"), env.path("ls-l")
    env.create_file(target, b"0123")
    env.sc.symlink(target, link)
    env.check(env.sc.lstat(link).is_symlink, "lstat reports the link")
    env.check(env.sc.stat(link).is_regular, "stat follows to the file")
    env.check_equal(env.sc.stat(link).st_size, 4)


@generic(39, "auto", "quick")
def test_fstat_matches_stat(env):
    path = env.path("fstat")
    env.create_file(path, b"same inode")
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.check_equal(env.sc.fstat(fd).st_ino, env.sc.stat(path).st_ino)
    finally:
        env.sc.close(fd)


@generic(40, "auto", "quick")
def test_chmod_changes_bits(env):
    path = env.path("chmod")
    env.create_file(path, b"x", mode=0o644)
    env.sc.chmod(path, 0o600)
    env.check_equal(env.sc.stat(path).permissions & 0o777, 0o600)
    env.sc.chmod(path, 0o755)
    env.check_equal(env.sc.stat(path).permissions & 0o777, 0o755)


@generic(41, "auto", "quick")
def test_chmod_requires_ownership(env):
    path = env.path("chmod-own")
    env.create_file(path, b"x")
    other = unprivileged(env, uid=4000)
    env.check_errno(errno.EPERM, other.chmod, path, 0o777)


@generic(42, "auto", "quick")
def test_chown_by_root(env):
    path = env.path("chown")
    env.create_file(path, b"x")
    env.sc.chown(path, 1234, 5678)
    st = env.sc.stat(path)
    env.check_equal((st.st_uid, st.st_gid), (1234, 5678))


@generic(43, "auto", "quick")
def test_chown_requires_cap_chown(env):
    path = env.path("chown-unpriv")
    env.create_file(path, b"x")
    env.sc.chown(path, 1000, 1000)
    other = unprivileged(env, uid=1000, gid=1000)
    env.check_errno(errno.EPERM, other.chown, path, 0, 0)


@generic(44, "auto", "quick")
def test_chown_clears_setuid(env):
    path = env.path("suid")
    env.create_file(path, b"x", mode=0o4755)
    env.check(env.sc.stat(path).st_mode & FileMode.S_ISUID, "setuid set initially")
    owner = unprivileged(env, uid=0, gid=0,
                         keep_caps=frozenset({"CAP_CHOWN", "CAP_FOWNER",
                                              "CAP_DAC_OVERRIDE"}))
    owner.chown(path, 2000, 2000)
    env.check(not (env.sc.stat(path).st_mode & FileMode.S_ISUID),
              "setuid cleared by chown without CAP_FSETID")


@generic(45, "auto", "quick")
def test_exec_requires_execute_bit(env):
    path = env.path("noexec")
    env.create_file(path, b"#!/bin/sh\n", mode=0o644)
    from repro.fs.constants import AccessMode
    env.check_errno(errno.EACCES, env.sc.access, path, AccessMode.X_OK)
    env.sc.chmod(path, 0o755)
    env.sc.access(path, AccessMode.X_OK)


@generic(46, "auto", "quick")
def test_sticky_bit_protects_deletion(env):
    shared = env.path("sticky")
    env.sc.mkdir(shared, 0o777)
    env.sc.chmod(shared, 0o1777)
    victim_owner = unprivileged(env, uid=3000)
    fd = victim_owner.open(f"{shared}/victim", CREAT_WR, 0o666)
    victim_owner.close(fd)
    attacker = unprivileged(env, uid=3001)
    env.check_errno(errno.EPERM, attacker.unlink, f"{shared}/victim")
    victim_owner.unlink(f"{shared}/victim")


@generic(47, "auto", "quick")
def test_utimens(env):
    path = env.path("utimens")
    env.create_file(path, b"x")
    env.sc.utimens(path, atime_ns=111_000, mtime_ns=222_000)
    st = env.sc.stat(path)
    env.check_equal(st.st_atime_ns, 111_000)
    env.check_equal(st.st_mtime_ns, 222_000)


@generic(48, "auto", "quick")
def test_mtime_updates_on_write(env):
    path = env.path("mtime")
    env.create_file(path, b"x")
    before = env.sc.stat(path).st_mtime_ns
    fd = env.sc.open(path, OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
    env.sc.write(fd, b"more")
    env.sc.close(fd)
    env.check(env.sc.stat(path).st_mtime_ns > before, "mtime advanced by write")


@generic(49, "auto", "quick")
def test_ctime_updates_on_chmod(env):
    path = env.path("ctime")
    env.create_file(path, b"x")
    before = env.sc.stat(path).st_ctime_ns
    env.sc.chmod(path, 0o640)
    env.check(env.sc.stat(path).st_ctime_ns >= before, "ctime did not go backwards")
    env.check_equal(env.sc.stat(path).permissions & 0o777, 0o640)


@generic(50, "auto", "quick")
def test_atime_monotonic_on_read(env):
    path = env.path("atime")
    env.create_file(path, b"read me")
    before = env.sc.stat(path).st_atime_ns
    env.read_file(path)
    env.check(env.sc.stat(path).st_atime_ns >= before, "atime non-decreasing")


# ---------------------------------------------------------------------------
# Directories
# ---------------------------------------------------------------------------
@generic(51, "auto", "quick")
def test_readdir_contains_dot_entries(env):
    path = env.path("dots")
    env.sc.mkdir(path)
    names = [name for name, _ino, _type in env.sc.readdir(path)]
    env.check("." in names and ".." in names, "dot entries present")


@generic(52, "auto", "quick")
def test_readdir_reflects_changes(env):
    path = env.path("listing")
    env.sc.mkdir(path)
    env.create_file(f"{path}/one", b"1")
    env.create_file(f"{path}/two", b"2")
    env.check_equal(sorted(env.sc.listdir(path)), ["one", "two"])
    env.sc.unlink(f"{path}/one")
    env.check_equal(env.sc.listdir(path), ["two"])


@generic(53, "auto")
def test_many_files_in_directory(env):
    path = env.path("many")
    env.sc.mkdir(path)
    for i in range(200):
        env.create_file(f"{path}/f{i:03d}", b"x")
    names = env.sc.listdir(path)
    env.check_equal(len(names), 200, "all 200 entries listed")
    env.check("f199" in names, "last entry present")


@generic(54, "auto", "quick")
def test_name_max(env):
    ok_name = "n" * 255
    too_long = "n" * 256
    env.create_file(env.path(ok_name), b"x")
    env.check(env.sc.exists(env.path(ok_name)), "255-char name accepted")
    env.check_errno(errno.ENAMETOOLONG, env.sc.open, env.path(too_long), CREAT_WR, 0o644)


@generic(55, "auto")
def test_deep_nesting(env):
    path = env.path("/".join(["d"] * 50))
    env.sc.makedirs(path)
    env.create_file(f"{path}/leaf", b"deep down")
    env.check_equal(env.read_file(f"{path}/leaf"), b"deep down")


@generic(56, "auto")
def test_large_file_integrity(env):
    path = env.path("large")
    pattern = bytes(range(256)) * 4096          # 1 MiB
    fd = env.sc.open(path, CREAT_WR)
    try:
        written = 0
        while written < len(pattern):
            written += env.sc.write(fd, pattern[written:written + 65536])
    finally:
        env.sc.close(fd)
    env.check_equal(env.sc.stat(path).st_size, len(pattern))
    data = env.read_file(path, size=len(pattern))
    env.check_equal(len(data), len(pattern))
    env.check_equal(data[:512], pattern[:512], "head intact")
    env.check_equal(data[-512:], pattern[-512:], "tail intact")


@generic(57, "auto", "quick")
def test_sparse_file_size(env):
    path = env.path("sparse")
    fd = env.sc.open(path, CREAT_WR)
    try:
        env.sc.pwrite(fd, b"end", 1_000_000)
    finally:
        env.sc.close(fd)
    st = env.sc.stat(path)
    env.check_equal(st.st_size, 1_000_003, "logical size includes the hole")


@generic(58, "auto", "quick", "prealloc")
def test_punch_hole(env):
    path = env.path("punch")
    env.create_file(path, b"A" * 8192)
    fd = env.sc.open(path, RW)
    try:
        env.sc.fallocate(fd, FallocateMode.PUNCH_HOLE | FallocateMode.KEEP_SIZE,
                         1024, 2048)
    finally:
        env.sc.close(fd)
    data = env.read_file(path)
    env.check_equal(len(data), 8192, "size unchanged by hole punch")
    env.check_equal(data[1024:3072], b"\x00" * 2048, "punched range zeroed")
    env.check_equal(data[:1024], b"A" * 1024, "prefix intact")


@generic(59, "auto", "quick", "prealloc")
def test_fallocate_extends(env):
    path = env.path("falloc")
    env.create_file(path, b"xy")
    fd = env.sc.open(path, RW)
    try:
        env.sc.fallocate(fd, FallocateMode.DEFAULT, 0, 4096)
    finally:
        env.sc.close(fd)
    env.check_equal(env.sc.stat(path).st_size, 4096, "fallocate grew the file")


@generic(60, "auto", "quick", "prealloc")
def test_fallocate_keep_size(env):
    path = env.path("falloc-keep")
    env.create_file(path, b"xy")
    fd = env.sc.open(path, RW)
    try:
        env.sc.fallocate(fd, FallocateMode.KEEP_SIZE, 0, 4096)
    finally:
        env.sc.close(fd)
    env.check_equal(env.sc.stat(path).st_size, 2, "KEEP_SIZE leaves size alone")


@generic(61, "auto", "quick")
def test_fsync(env):
    path = env.path("fsync")
    fd = env.sc.open(path, CREAT_WR)
    try:
        env.sc.write(fd, b"durable")
        env.sc.fsync(fd)
    finally:
        env.sc.close(fd)
    env.check_equal(env.read_file(path), b"durable")


@generic(62, "auto", "quick")
def test_fdatasync(env):
    path = env.path("fdatasync")
    fd = env.sc.open(path, CREAT_WR)
    try:
        env.sc.write(fd, b"data only")
        env.sc.fdatasync(fd)
    finally:
        env.sc.close(fd)
    env.check_equal(env.read_file(path), b"data only")


@generic(63, "auto", "quick")
def test_statfs(env):
    st = env.sc.statfs(env.test_dir)
    env.check(st.f_bsize >= 512, "block size sane")
    env.check(st.f_blocks > 0, "filesystem reports capacity")
    env.check(st.f_bfree <= st.f_blocks, "free blocks bounded by total")
    env.check(st.f_namemax >= 255, "NAME_MAX at least 255")


# ---------------------------------------------------------------------------
# Extended attributes
# ---------------------------------------------------------------------------
@generic(64, "auto", "quick", "attr")
def test_xattr_roundtrip(env):
    path = env.path("xattr")
    env.create_file(path, b"x")
    env.sc.setxattr(path, "user.comment", b"hello attr")
    env.check_equal(env.sc.getxattr(path, "user.comment"), b"hello attr")


@generic(65, "auto", "quick", "attr")
def test_xattr_replace_missing(env):
    from repro.fs.constants import XattrFlags
    path = env.path("xattr-replace")
    env.create_file(path, b"x")
    env.check_errno(errno.ENODATA, env.sc.setxattr, path, "user.nope", b"v",
                    XattrFlags.XATTR_REPLACE)


@generic(66, "auto", "quick", "attr")
def test_xattr_create_existing(env):
    from repro.fs.constants import XattrFlags
    path = env.path("xattr-create")
    env.create_file(path, b"x")
    env.sc.setxattr(path, "user.key", b"1")
    env.check_errno(errno.EEXIST, env.sc.setxattr, path, "user.key", b"2",
                    XattrFlags.XATTR_CREATE)


@generic(67, "auto", "quick", "attr")
def test_xattr_list(env):
    path = env.path("xattr-list")
    env.create_file(path, b"x")
    env.sc.setxattr(path, "user.a", b"1")
    env.sc.setxattr(path, "user.b", b"2")
    names = env.sc.listxattr(path)
    env.check("user.a" in names and "user.b" in names, "both attributes listed")


@generic(68, "auto", "quick", "attr")
def test_xattr_remove(env):
    path = env.path("xattr-rm")
    env.create_file(path, b"x")
    env.sc.setxattr(path, "user.gone", b"soon")
    env.sc.removexattr(path, "user.gone")
    env.check_errno(errno.ENODATA, env.sc.getxattr, path, "user.gone")


@generic(69, "auto", "attr")
def test_xattr_large_value(env):
    path = env.path("xattr-large")
    env.create_file(path, b"x")
    value = bytes(range(256)) * 16       # 4 KiB
    env.sc.setxattr(path, "user.blob", value)
    env.check_equal(env.sc.getxattr(path, "user.blob"), value)


# ---------------------------------------------------------------------------
# Permissions
# ---------------------------------------------------------------------------
@generic(70, "auto", "quick", "perms")
def test_access_denied_without_read_bit(env):
    from repro.fs.constants import AccessMode
    path = env.path("secret")
    env.create_file(path, b"top secret", mode=0o600)
    other = unprivileged(env, uid=5000)
    env.check_errno(errno.EACCES, other.access, path, AccessMode.R_OK)


@generic(71, "auto", "quick", "perms")
def test_open_denied_without_read_bit(env):
    path = env.path("noread")
    env.create_file(path, b"hidden", mode=0o200)
    other = unprivileged(env, uid=5001)
    env.check_errno(errno.EACCES, other.open, path, OpenFlags.O_RDONLY)


@generic(72, "auto", "quick", "perms")
def test_traverse_requires_execute(env):
    private_dir = env.path("private")
    env.sc.mkdir(private_dir, 0o700)
    env.create_file(f"{private_dir}/inside", b"x")
    other = unprivileged(env, uid=5002)
    env.check_errno(errno.EACCES, other.stat, f"{private_dir}/inside")


@generic(73, "auto", "quick", "perms")
def test_root_overrides_dac(env):
    path = env.path("rootcan")
    env.create_file(path, b"root sees all", mode=0o000)
    env.check_equal(env.read_file(path), b"root sees all",
                    "CAP_DAC_OVERRIDE bypasses mode bits")


# ---------------------------------------------------------------------------
# Open-file semantics
# ---------------------------------------------------------------------------
@generic(74, "auto", "quick")
def test_unlink_while_open(env):
    path = env.path("orphan")
    env.create_file(path, b"still here")
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.sc.unlink(path)
        env.check(not env.sc.exists(path), "name removed")
        env.check_equal(env.sc.read(fd, 100), b"still here",
                        "data readable through the open descriptor")
        env.check_equal(env.sc.fstat(fd).st_nlink, 0, "nlink reports zero")
    finally:
        env.sc.close(fd)


@generic(75, "auto", "quick")
def test_rename_while_open(env):
    old, new = env.path("ren-open-a"), env.path("ren-open-b")
    env.create_file(old, b"moving target")
    fd = env.sc.open(old, OpenFlags.O_RDONLY)
    try:
        env.sc.rename(old, new)
        env.check_equal(env.sc.read(fd, 100), b"moving target",
                        "descriptor survives rename")
    finally:
        env.sc.close(fd)


@generic(76, "auto", "quick")
def test_dup_shares_offset(env):
    path = env.path("dup")
    env.create_file(path, b"0123456789")
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    fd2 = env.sc.dup(fd)
    try:
        env.check_equal(env.sc.read(fd, 4), b"0123")
        env.check_equal(env.sc.read(fd2, 4), b"4567",
                        "dup'd descriptor shares the file offset")
    finally:
        env.sc.close(fd)
        env.sc.close(fd2)


@generic(77, "auto", "quick")
def test_mknod_fifo(env):
    path = env.path("fifo")
    env.sc.mknod(path, int(FileMode.S_IFIFO) | 0o644)
    st = env.sc.stat(path)
    env.check_equal(st.st_mode & FileMode.S_IFMT, FileMode.S_IFIFO, "FIFO type")


@generic(78, "auto", "quick")
def test_mknod_socket(env):
    path = env.path("sock")
    env.sc.mknod(path, int(FileMode.S_IFSOCK) | 0o644)
    st = env.sc.stat(path)
    env.check_equal(st.st_mode & FileMode.S_IFMT, FileMode.S_IFSOCK, "socket type")


# ---------------------------------------------------------------------------
# Advisory locking
# ---------------------------------------------------------------------------
@generic(79, "auto", "quick", "locks")
def test_conflicting_write_locks(env):
    path = env.path("lock1")
    env.create_file(path, b"locked")
    holder = unprivileged(env, uid=0, keep_caps=frozenset(KNOWN_CAPABILITIES))
    contender = unprivileged(env, uid=0, keep_caps=frozenset(KNOWN_CAPABILITIES))
    fd1 = holder.open(path, RW)
    fd2 = contender.open(path, RW)
    try:
        holder.flock(fd1, LockType.F_WRLCK)
        env.check_errno(errno.EAGAIN, contender.flock, fd2, LockType.F_WRLCK)
    finally:
        holder.close(fd1)
        contender.close(fd2)


@generic(80, "auto", "quick", "locks")
def test_shared_read_locks(env):
    path = env.path("lock2")
    env.create_file(path, b"shared")
    a = unprivileged(env, uid=0, keep_caps=frozenset(KNOWN_CAPABILITIES))
    b = unprivileged(env, uid=0, keep_caps=frozenset(KNOWN_CAPABILITIES))
    fd1, fd2 = a.open(path, OpenFlags.O_RDONLY), b.open(path, OpenFlags.O_RDONLY)
    try:
        a.flock(fd1, LockType.F_RDLCK)
        b.flock(fd2, LockType.F_RDLCK)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(81, "auto", "quick", "locks")
def test_lock_released_on_close(env):
    path = env.path("lock3")
    env.create_file(path, b"serialised")
    first = unprivileged(env, uid=0, keep_caps=frozenset(KNOWN_CAPABILITIES))
    second = unprivileged(env, uid=0, keep_caps=frozenset(KNOWN_CAPABILITIES))
    fd1 = first.open(path, RW)
    first.flock(fd1, LockType.F_WRLCK)
    first.close(fd1)
    fd2 = second.open(path, RW)
    try:
        second.flock(fd2, LockType.F_WRLCK)
    finally:
        second.close(fd2)


# ---------------------------------------------------------------------------
# Modes, set-gid directories, integrity
# ---------------------------------------------------------------------------
@generic(82, "auto", "quick", "perms")
def test_umask_affects_mkdir(env):
    previous = env.sc.umask(0o027)
    try:
        path = env.path("masked-dir")
        env.sc.mkdir(path, 0o777)
        env.check_equal(env.sc.stat(path).permissions & 0o777, 0o750)
    finally:
        env.sc.umask(previous)


@generic(83, "auto", "quick", "perms")
def test_setgid_directory_inherits_group(env):
    shared = env.path("team")
    env.sc.mkdir(shared, 0o775)
    env.sc.chown(shared, 0, 4242)
    env.sc.chmod(shared, 0o2775)
    env.create_file(f"{shared}/report", b"group data")
    env.check_equal(env.sc.stat(f"{shared}/report").st_gid, 4242,
                    "new file inherits the directory group")


@generic(84, "auto", "quick", "perms")
def test_setgid_directory_propagates_to_subdir(env):
    shared = env.path("team2")
    env.sc.mkdir(shared, 0o775)
    env.sc.chown(shared, 0, 4343)
    env.sc.chmod(shared, 0o2775)
    env.sc.mkdir(f"{shared}/sub")
    st = env.sc.stat(f"{shared}/sub")
    env.check_equal(st.st_gid, 4343, "subdirectory inherits the group")
    env.check(st.st_mode & FileMode.S_ISGID, "subdirectory inherits setgid")


@generic(85, "auto")
def test_large_offset_sparse_io(env):
    path = env.path("huge-offset")
    offset = 1 << 30                      # 1 GiB
    fd = env.sc.open(path, CREAT_RW)
    try:
        env.sc.pwrite(fd, b"far away", offset)
        env.check_equal(env.sc.fstat(fd).st_size, offset + 8)
        env.check_equal(env.sc.pread(fd, 8, offset), b"far away")
        env.check_equal(env.sc.pread(fd, 8, offset // 2), b"\x00" * 8)
    finally:
        env.sc.close(fd)


@generic(86, "auto")
def test_many_small_writes_integrity(env):
    path = env.path("chunks")
    fd = env.sc.open(path, CREAT_WR)
    try:
        for i in range(128):
            env.sc.write(fd, bytes([i % 256]) * 97)
    finally:
        env.sc.close(fd)
    data = env.read_file(path, size=97 * 128)
    env.check_equal(len(data), 97 * 128)
    env.check_equal(data[:97], b"\x00" * 97)
    env.check_equal(data[-97:], bytes([127]) * 97)


@generic(87, "auto", "quick")
def test_two_appenders(env):
    path = env.path("two-append")
    env.create_file(path, b"")
    fd1 = env.sc.open(path, OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
    fd2 = env.sc.open(path, OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
    try:
        env.sc.write(fd1, b"aaaa")
        env.sc.write(fd2, b"bbbb")
        env.sc.write(fd1, b"cccc")
    finally:
        env.sc.close(fd1)
        env.sc.close(fd2)
    env.check_equal(env.read_file(path), b"aaaabbbbcccc",
                    "O_APPEND writes always land at EOF")


@generic(88, "auto", "quick")
def test_recreate_after_unlink_open(env):
    path = env.path("recreate")
    env.create_file(path, b"old generation")
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.sc.unlink(path)
        env.create_file(path, b"new generation")
        env.check_equal(env.sc.read(fd, 100), b"old generation",
                        "old descriptor still reads the old inode")
        env.check_equal(env.read_file(path), b"new generation")
        env.check(env.sc.fstat(fd).st_ino != env.sc.stat(path).st_ino,
                  "the two names refer to different inodes")
    finally:
        env.sc.close(fd)


@generic(89, "auto", "quick")
def test_empty_directory_listing(env):
    path = env.path("empty-dir")
    env.sc.mkdir(path)
    env.check_equal(env.sc.listdir(path), [], "no entries besides the dots")


@generic(90, "auto", "quick")
def test_mode_preserved_across_rename(env):
    old, new = env.path("mode-old"), env.path("mode-new")
    env.create_file(old, b"x", mode=0o751)
    env.sc.chown(old, 77, 88)
    env.sc.rename(old, new)
    st = env.sc.stat(new)
    env.check_equal(st.permissions & 0o777, 0o751, "mode preserved")
    env.check_equal((st.st_uid, st.st_gid), (77, 88), "ownership preserved")


# ---------------------------------------------------------------------------
# Writeback and caching: fsync durability, O_SYNC, drop_caches, truncate vs
# dirty pages, rename-over-open, sparse hole/extent semantics
# ---------------------------------------------------------------------------
def _echo_drop_caches(env, mode: int) -> None:
    """``echo mode > /proc/sys/vm/drop_caches`` — the operator path."""
    fd = env.sc.open("/proc/sys/vm/drop_caches", OpenFlags.O_WRONLY)
    try:
        env.sc.write(fd, f"{mode}\n".encode())
    finally:
        env.sc.close(fd)


@generic(91, "auto", "quick", "writeback")
def test_fsync_survives_drop_caches(env):
    path = env.path("durable-fsync")
    fd = env.sc.open(path, CREAT_WR)
    try:
        env.sc.write(fd, b"must survive a cache drop")
        env.sc.fsync(fd)
    finally:
        env.sc.close(fd)
    _echo_drop_caches(env, 3)
    env.check_equal(env.read_file(path), b"must survive a cache drop",
                    "fsynced data intact after drop_caches")
    env.check_equal(env.sc.stat(path).st_size, 25, "size intact")


@generic(92, "auto", "quick", "writeback")
def test_fdatasync_survives_drop_caches(env):
    path = env.path("durable-fdatasync")
    fd = env.sc.open(path, CREAT_WR)
    try:
        env.sc.write(fd, b"A" * 10000)
        env.sc.fdatasync(fd)
    finally:
        env.sc.close(fd)
    _echo_drop_caches(env, 3)
    data = env.read_file(path)
    env.check_equal(len(data), 10000, "fdatasync persisted the length")
    env.check_equal(data, b"A" * 10000, "fdatasync persisted the bytes")


@generic(93, "auto", "quick", "writeback")
def test_o_sync_write_is_durable(env):
    path = env.path("osync")
    fd = env.sc.open(path, CREAT_WR | OpenFlags.O_SYNC)
    try:
        env.sc.write(fd, b"synchronous " * 100)
        ino = env.sc.fstat(fd).st_ino
        env.check_equal(env.fs_under_test.writeback.pending(ino), 0,
                        "O_SYNC leaves no unflushed dirty bytes behind")
    finally:
        env.sc.close(fd)
    _echo_drop_caches(env, 3)
    env.check_equal(env.read_file(path), b"synchronous " * 100)


@generic(94, "auto", "quick", "writeback")
def test_o_dsync_write_is_durable(env):
    path = env.path("odsync")
    fd = env.sc.open(path, CREAT_WR | OpenFlags.O_DSYNC)
    try:
        env.sc.write(fd, b"data-sync")
        ino = env.sc.fstat(fd).st_ino
        env.check_equal(env.fs_under_test.writeback.pending(ino), 0,
                        "O_DSYNC flushes each write's data")
    finally:
        env.sc.close(fd)
    env.check_equal(env.read_file(path), b"data-sync")


@generic(95, "auto", "quick", "writeback")
def test_unsynced_write_survives_drop_caches(env):
    # The simulated drop_caches settles dirty data first (the
    # `sync; echo 3 > drop_caches` idiom in one step), so an unsynced write
    # must still be readable afterwards.
    path = env.path("unsynced")
    env.create_file(path, b"written but never fsynced")
    _echo_drop_caches(env, 1)
    env.check_equal(env.read_file(path), b"written but never fsynced")


@generic(96, "auto", "quick", "caching")
def test_drop_caches_slab_invalidates_dentries(env):
    path = env.path("dentry-victim")
    env.create_file(path, b"x")
    env.sc.stat(path)                        # populate the dcache
    gen_before = env.fs_under_test.dentry_gen
    _echo_drop_caches(env, 2)
    env.check_equal(env.fs_under_test.dentry_gen, gen_before + 1,
                    "mode 2 bumps the dentry generation")
    env.check_equal(env.sc.stat(path).st_size, 1, "lookup still resolves")


@generic(97, "auto", "quick", "caching")
def test_drop_caches_empties_page_cache(env):
    path = env.path("resident")
    env.create_file(path, b"B" * 16384)
    env.read_file(path)                      # make the pages resident
    _echo_drop_caches(env, 3)
    env.check_equal(len(env.fs_under_test.page_cache), 0,
                    "mode 3 leaves no resident pages")
    env.check_equal(env.read_file(path), b"B" * 16384, "content re-readable")


@generic(98, "auto", "quick", "caching")
def test_drop_caches_rejects_invalid_values(env):
    for payload in (b"0", b"5", b"not-a-mode"):
        fd = env.sc.open("/proc/sys/vm/drop_caches", OpenFlags.O_WRONLY)
        try:
            env.check_errno(errno.EINVAL, env.sc.write, fd, payload)
        finally:
            env.sc.close(fd)


@generic(99, "auto", "quick", "writeback")
def test_truncate_discards_dirty_data(env):
    path = env.path("trunc-dirty")
    env.create_file(path, b"C" * 65536)      # dirty, below any flush threshold
    env.sc.truncate(path, 0)
    env.check_equal(env.sc.stat(path).st_size, 0, "truncate wins over dirty pages")
    env.check_equal(env.read_file(path), b"", "no stale bytes resurface")
    env.create_file(path, b"fresh")
    env.check_equal(env.read_file(path), b"fresh", "file usable after the cycle")


@generic(100, "auto", "quick", "writeback")
def test_truncate_shrink_then_extend_zero_fills(env):
    path = env.path("shrink-extend")
    env.create_file(path, b"D" * 10000)
    env.sc.truncate(path, 3000)
    env.sc.truncate(path, 8000)
    data = env.read_file(path)
    env.check_equal(data[:3000], b"D" * 3000, "kept prefix intact")
    env.check_equal(data[3000:], b"\x00" * 5000,
                    "re-extended range reads as zeros, not stale data")


@generic(101, "auto", "quick", "writeback")
def test_truncate_mid_page(env):
    path = env.path("midpage")
    env.create_file(path, b"E" * 8192)
    env.sc.truncate(path, 4500)              # cut inside the second page
    _echo_drop_caches(env, 1)
    data = env.read_file(path)
    env.check_equal(len(data), 4500)
    env.check_equal(data, b"E" * 4500, "partial page survives exactly")


@generic(102, "auto", "quick", "writeback")
def test_write_beyond_truncated_eof(env):
    path = env.path("trunc-hole")
    env.create_file(path, b"F" * 4096)
    env.sc.truncate(path, 1000)
    fd = env.sc.open(path, RW)
    try:
        env.sc.pwrite(fd, b"tail", 3000)
    finally:
        env.sc.close(fd)
    data = env.read_file(path)
    env.check_equal(data[:1000], b"F" * 1000)
    env.check_equal(data[1000:3000], b"\x00" * 2000,
                    "gap between old EOF and the write is a hole of zeros")
    env.check_equal(data[3000:], b"tail")


@generic(103, "auto", "quick", "rename")
def test_rename_over_open_target(env):
    winner, loser = env.path("ren-winner"), env.path("ren-loser")
    env.create_file(loser, b"about to be replaced")
    env.create_file(winner, b"replacement content")
    fd = env.sc.open(loser, OpenFlags.O_RDONLY)
    try:
        env.sc.rename(winner, loser)
        env.check_equal(env.sc.read(fd, 100), b"about to be replaced",
                        "open descriptor still reads the replaced inode")
        env.check_equal(env.sc.fstat(fd).st_nlink, 0,
                        "replaced inode reports zero links")
        env.check_equal(env.read_file(loser), b"replacement content")
    finally:
        env.sc.close(fd)


@generic(104, "auto", "quick", "rename")
def test_open_descriptor_follows_rename(env):
    old, new = env.path("follow-old"), env.path("follow-new")
    env.create_file(old, b"")
    fd = env.sc.open(old, OpenFlags.O_WRONLY)
    try:
        env.sc.rename(old, new)
        env.sc.write(fd, b"written after the rename")
        env.sc.fsync(fd)
    finally:
        env.sc.close(fd)
    env.check_equal(env.read_file(new), b"written after the rename",
                    "write through the descriptor lands in the renamed file")


@generic(105, "auto", "quick", "rename", "writeback")
def test_fsync_replaced_open_file(env):
    target, source = env.path("fsync-replaced"), env.path("fsync-source")
    env.create_file(target, b"")
    fd = env.sc.open(target, OpenFlags.O_WRONLY)
    try:
        env.sc.write(fd, b"dirty data on the doomed inode")
        env.create_file(source, b"new")
        env.sc.rename(source, target)
        env.sc.fsync(fd)                     # must not error on the orphan
        env.check_equal(env.sc.fstat(fd).st_size, 30)
    finally:
        env.sc.close(fd)
    env.check_equal(env.read_file(target), b"new")


@generic(106, "auto", "quick", "seek")
def test_seek_data_and_hole(env):
    path = env.path("seekdh")
    env.create_file(path, b"G" * 5000)
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.check_equal(env.sc.lseek(fd, 0, SeekWhence.SEEK_DATA), 0,
                        "SEEK_DATA at 0 stays at 0")
        env.check_equal(env.sc.lseek(fd, 1234, SeekWhence.SEEK_DATA), 1234)
        hole = env.sc.lseek(fd, 0, SeekWhence.SEEK_HOLE)
        env.check_equal(hole, 5000, "the implicit hole starts at EOF")
    finally:
        env.sc.close(fd)


@generic(107, "auto", "quick", "seek")
def test_seek_data_past_eof_is_enxio(env):
    path = env.path("seekeof")
    env.create_file(path, b"hi")
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.check_errno(errno.ENXIO, env.sc.lseek, fd, 2, SeekWhence.SEEK_DATA)
        env.check_errno(errno.ENXIO, env.sc.lseek, fd, 99, SeekWhence.SEEK_HOLE)
    finally:
        env.sc.close(fd)
    empty = env.path("seekempty")
    env.create_file(empty)
    fd = env.sc.open(empty, OpenFlags.O_RDONLY)
    try:
        env.check_errno(errno.ENXIO, env.sc.lseek, fd, 0, SeekWhence.SEEK_DATA)
    finally:
        env.sc.close(fd)


@generic(108, "auto", "quick", "prealloc", "caching")
def test_punched_hole_survives_drop_caches(env):
    path = env.path("punch-drop")
    env.create_file(path, b"H" * 16384)
    fd = env.sc.open(path, RW)
    try:
        env.sc.fallocate(fd, FallocateMode.PUNCH_HOLE | FallocateMode.KEEP_SIZE,
                         4096, 8192)
    finally:
        env.sc.close(fd)
    _echo_drop_caches(env, 3)
    data = env.read_file(path)
    env.check_equal(len(data), 16384, "size unchanged")
    env.check_equal(data[4096:12288], b"\x00" * 8192, "hole stays zeroed")
    env.check_equal(data[:4096], b"H" * 4096, "leading extent intact")
    env.check_equal(data[12288:], b"H" * 4096, "trailing extent intact")


@generic(109, "auto", "quick", "caching")
def test_sparse_write_survives_drop_caches(env):
    path = env.path("sparse-drop")
    fd = env.sc.open(path, CREAT_RW)
    try:
        env.sc.pwrite(fd, b"island", 300000)
    finally:
        env.sc.close(fd)
    _echo_drop_caches(env, 3)
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        env.check_equal(env.sc.pread(fd, 6, 300000), b"island")
        env.check_equal(env.sc.pread(fd, 16, 100000), b"\x00" * 16,
                        "hole reads as zeros after the caches are gone")
    finally:
        env.sc.close(fd)


@generic(110, "auto", "quick", "prealloc")
def test_punch_entire_file(env):
    path = env.path("punch-all")
    env.create_file(path, b"I" * 8192)
    fd = env.sc.open(path, RW)
    try:
        env.sc.fallocate(fd, FallocateMode.PUNCH_HOLE | FallocateMode.KEEP_SIZE,
                         0, 8192)
    finally:
        env.sc.close(fd)
    env.check_equal(env.sc.stat(path).st_size, 8192, "KEEP_SIZE holds the size")
    env.check_equal(env.read_file(path), b"\x00" * 8192, "everything is hole")


@generic(111, "auto", "quick", "writeback")
def test_many_small_writes_one_fsync(env):
    path = env.path("aggregated")
    pattern = b"".join(bytes([i % 251]) * 97 for i in range(64))
    fd = env.sc.open(path, CREAT_WR)
    try:
        for i in range(64):
            env.sc.write(fd, bytes([i % 251]) * 97)
        env.sc.fsync(fd)
    finally:
        env.sc.close(fd)
    _echo_drop_caches(env, 3)
    env.check_equal(env.read_file(path), pattern,
                    "aggregated writeback preserved every record")


@generic(112, "auto", "quick", "writeback")
def test_fsync_is_per_inode(env):
    # Settle global dirty state first so the background flusher stays idle.
    # The descriptors stay open throughout: releasing the last descriptor is
    # itself a flush point (the FUSE client writes pending data back on
    # release), which would empty the counters this test observes.
    _echo_drop_caches(env, 1)
    a, b = env.path("per-ino-a"), env.path("per-ino-b")
    fd_a = env.sc.open(a, CREAT_WR, 0o644)
    fd_b = env.sc.open(b, CREAT_WR, 0o644)
    try:
        env.sc.write(fd_a, b"J" * 32768)
        env.sc.write(fd_b, b"K" * 32768)
        ino_a, ino_b = env.sc.fstat(fd_a).st_ino, env.sc.fstat(fd_b).st_ino
        engine = env.fs_under_test.writeback
        env.check(engine.pending(ino_a) > 0 and engine.pending(ino_b) > 0,
                  "both files carry unflushed dirty bytes")
        env.sc.fsync(fd_a)
        env.check_equal(engine.pending(ino_a), 0, "fsync drained only its inode")
        env.check(engine.pending(ino_b) > 0, "the other inode stays pending")
        env.sc.fsync(fd_b)
        env.check_equal(engine.pending(ino_b), 0)
    finally:
        env.sc.close(fd_a)
        env.sc.close(fd_b)


@generic(113, "auto", "quick", "writeback")
def test_append_fsync_drop_readback(env):
    path = env.path("append-durable")
    env.create_file(path, b"log:")
    for chunk in (b"one,", b"two,", b"three"):
        fd = env.sc.open(path, OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
        try:
            env.sc.write(fd, chunk)
            env.sc.fsync(fd)
        finally:
            env.sc.close(fd)
    _echo_drop_caches(env, 3)
    env.check_equal(env.read_file(path), b"log:one,two,three")
    env.check_equal(env.sc.stat(path).st_size, 17)


@generic(114, "auto", "quick", "prealloc", "seek")
def test_keep_size_prealloc_invisible_to_seek_hole(env):
    path = env.path("prealloc-seek")
    env.create_file(path, b"L" * 3000)
    fd = env.sc.open(path, RW)
    try:
        env.sc.fallocate(fd, FallocateMode.KEEP_SIZE, 0, 1 << 20)
        env.check_equal(env.sc.fstat(fd).st_size, 3000,
                        "preallocation beyond EOF does not change the size")
        env.check_equal(env.sc.lseek(fd, 0, SeekWhence.SEEK_HOLE), 3000,
                        "SEEK_HOLE reports EOF, not the preallocated tail")
        env.check_equal(env.sc.lseek(fd, 0, SeekWhence.SEEK_DATA), 0)
    finally:
        env.sc.close(fd)


# ---------------------------------------------------------------------------
# Reclaim and read shaping (generic/115-130)
# ---------------------------------------------------------------------------
@contextlib.contextmanager
def _reclaim_budget(env, slack_bytes: int):
    """Enable memory-pressure reclaim with ``slack_bytes`` of headroom above
    the page caches' current footprint, restoring the machine afterwards."""
    kernel = env.machine.kernel
    mem, vm = kernel.mem, kernel.vm
    saved = (mem.total_bytes, mem.reserved_bytes, mem.reclaim_enabled)
    mem.reserved_bytes = 0
    mem.total_bytes = (vm.cached_bytes_total() + vm.dirty_bytes_total()
                       + slack_bytes)
    mem.reclaim_enabled = True
    try:
        yield vm
    finally:
        mem.total_bytes, mem.reserved_bytes, mem.reclaim_enabled = saved


@contextlib.contextmanager
def _vm_knobs(env, **knobs):
    """Write ``/proc/sys/vm`` knobs for the duration, restoring the per-engine
    tunables exactly afterwards (the shared machine must stay untouched)."""
    vm = env.machine.kernel.vm
    state = vm.snapshot()
    try:
        for name, value in knobs.items():
            fd = env.sc.open(f"/proc/sys/vm/{name}", OpenFlags.O_WRONLY)
            try:
                env.sc.write(fd, f"{value}\n".encode())
            finally:
                env.sc.close(fd)
        yield vm
    finally:
        vm.restore(state)


def _dirty_file(env, name: str, nbytes: int):
    """Create a file of ``nbytes`` dirty bytes, keeping the descriptor open
    (closing it is itself a flush point on the FUSE client)."""
    fd = env.sc.open(env.path(name), CREAT_WR, 0o644)
    env.sc.write(fd, b"m" * nbytes)
    return fd, env.sc.fstat(fd).st_ino


@generic(115, "auto", "quick", "reclaim")
def test_cache_bounded_under_memavailable(env):
    """The page caches never outgrow the MemAvailable budget once reclaim is
    coupled to the memory model."""
    vm = env.machine.kernel.vm
    reclaimed_before = vm.reclaim_stats.pages_reclaimed
    with _reclaim_budget(env, slack_bytes=256 << 10) as vm:
        path = env.path("bounded")
        env.create_file(path, b"R" * (1 << 20))     # 4x the slack
        env.read_file(path)
        budget = vm.cache_budget_bytes()
        env.check(budget is not None, "reclaim budget is live")
        env.check(vm.cached_bytes_total() <= budget,
                  f"Cached {vm.cached_bytes_total()} exceeds the budget {budget}")
        env.check(vm.reclaim_stats.pages_reclaimed > reclaimed_before,
                  "growth beyond the budget reclaimed pages")


@generic(116, "auto", "quick", "reclaim", "writeback")
def test_reclaim_flushes_dirty_pages_before_dropping(env):
    """Dirty victims are written back through their owning engine (reason
    "reclaim") before the pages drop, and the data stays intact.

    The background flusher is disabled and the caches start empty, so the
    dirty data is both unflushed and the LRU-oldest when pressure arrives —
    reclaim has no clean pages to hide behind.
    """
    vm = env.machine.kernel.vm
    engine = env.fs_under_test.writeback
    old_payload = b"".join(bytes([i % 251]) * 1024 for i in range(64))   # 64 KiB
    big_payload = b"".join(bytes([i % 199]) * 1024 for i in range(512))  # 512 KiB
    with _vm_knobs(env, dirty_background_bytes=0, dirty_bytes=0):
        _echo_drop_caches(env, 3)
        with _reclaim_budget(env, slack_bytes=128 << 10):
            flushed_before = vm.reclaim_stats.pages_flushed
            reclaim_before = engine.stats.flushes_by_reason.get("reclaim", 0)
            old = env.path("dirty-victim-old")
            fd_old = env.sc.open(old, CREAT_WR, 0o644)
            try:
                env.sc.write(fd_old, old_payload)      # oldest + dirty
                big = env.path("dirty-victim-big")
                env.create_file(big, big_payload)      # pressure
                env.check(vm.reclaim_stats.pages_flushed > flushed_before,
                          "reclaim flushed dirty pages before dropping them")
                env.check(engine.stats.flushes_by_reason.get("reclaim", 0)
                          > reclaim_before,
                          "the owning engine saw reclaim-reason flushes")
                env.check_equal(env.read_file(old), old_payload,
                                "reclaimed dirty data reads back intact")
                env.check_equal(env.read_file(big), big_payload,
                                "the pressure workload reads back intact")
            finally:
                env.sc.close(fd_old)


@generic(117, "auto", "quick", "reclaim", "caching")
def test_drop_caches_vs_reclaim_interaction(env):
    """drop_caches empties the caches below the budget; writes that stay
    inside the freed headroom then proceed without further reclaim."""
    with _reclaim_budget(env, slack_bytes=512 << 10) as vm:
        passes_start = vm.reclaim_stats.reclaims
        env.create_file(env.path("pressure-a"), b"A" * (1 << 20))
        env.check(vm.reclaim_stats.reclaims > passes_start,
                  "outgrowing the budget reclaims")
        _echo_drop_caches(env, 1)
        env.check_equal(vm.cached_bytes_total(), 0,
                        "drop_caches leaves no resident pages")
        passes_before = vm.reclaim_stats.reclaims
        env.create_file(env.path("pressure-b"), b"B" * (64 << 10))
        env.check_equal(vm.reclaim_stats.reclaims, passes_before,
                        "writes inside the freed headroom do not reclaim")
    # Re-tightening the budget around the new, smaller footprint puts the
    # caches back under pressure immediately.
    with _reclaim_budget(env, slack_bytes=64 << 10) as vm:
        passes_before = vm.reclaim_stats.reclaims
        env.create_file(env.path("pressure-c"), b"C" * (512 << 10))
        env.check(vm.reclaim_stats.reclaims > passes_before,
                  "a re-tightened budget reclaims again")


@generic(118, "auto", "quick", "writeback", "reclaim")
def test_periodic_flusher_expires_aged_dirty_data(env):
    """vm.dirty_writeback_centisecs wakes the flusher on the virtual clock:
    aged dirty data is written back with *no* further write activity."""
    clock = env.machine.clock
    engine = env.fs_under_test.writeback
    with _vm_knobs(env, dirty_writeback_centisecs=5):
        fd, ino = _dirty_file(env, "aged", 32 << 10)
        try:
            env.check(engine.pending(ino) > 0, "write left dirty bytes pending")
            clock.advance(11 * 10_000_000)       # > 2 periods, zero writes
            env.check_equal(engine.pending(ino), 0,
                            "the periodic wakeup flushed the aged data")
            env.check(engine.stats.flushes_by_reason.get("periodic", 0) >= 1,
                      "the flush is attributed to the periodic flusher")
        finally:
            env.sc.close(fd)


@generic(119, "auto", "quick", "writeback")
def test_periodic_flusher_zero_disables(env):
    """dirty_writeback_centisecs=0 (the default) never flushes on idle time."""
    clock = env.machine.clock
    engine = env.fs_under_test.writeback
    fd, ino = _dirty_file(env, "idle", 32 << 10)
    try:
        pending = engine.pending(ino)
        env.check(pending > 0, "write left dirty bytes pending")
        clock.advance(10_000_000_000)            # 10 virtual seconds idle
        env.check_equal(engine.pending(ino), pending,
                        "no wakeup fires while the knob is 0")
    finally:
        env.sc.close(fd)


@generic(120, "auto", "quick", "writeback")
def test_periodic_flusher_honours_expire_age(env):
    """With both knobs set, the wakeup only writes back data older than
    dirty_expire_centisecs — younger data survives the ticks."""
    clock = env.machine.clock
    engine = env.fs_under_test.writeback
    with _vm_knobs(env, dirty_writeback_centisecs=2, dirty_expire_centisecs=10):
        fd, ino = _dirty_file(env, "young", 32 << 10)
        try:
            clock.advance(5 * 10_000_000)        # two ticks, data aged 5cs
            env.check(engine.pending(ino) > 0,
                      "data younger than the expiry survives the ticks")
            clock.advance(7 * 10_000_000)        # now aged past 10cs
            env.check_equal(engine.pending(ino), 0,
                            "the next tick expires it")
        finally:
            env.sc.close(fd)


@generic(121, "auto", "quick", "sysctl")
def test_invalid_vm_sysctl_values_einval(env):
    """Out-of-range and non-numeric sysctl writes fail with EINVAL and leave
    the knob untouched."""
    for knob, payload in (("dirty_ratio", b"101"),
                          ("dirty_background_ratio", b"-1"),
                          ("dirty_writeback_centisecs", b"-5"),
                          ("vfs_cache_pressure", b"-100"),
                          ("dirty_writeback_centisecs", b"not-a-number")):
        before = env.machine.kernel.vm.get(knob)
        fd = env.sc.open(f"/proc/sys/vm/{knob}", OpenFlags.O_WRONLY)
        try:
            env.check_errno(errno.EINVAL, env.sc.write, fd, payload)
        finally:
            env.sc.close(fd)
        env.check_equal(env.machine.kernel.vm.get(knob), before,
                        f"rejected write left vm.{knob} untouched")


@generic(122, "auto", "quick", "reclaim", "caching")
def test_vfs_cache_pressure_weights_dcache_shrinking(env):
    """vfs_cache_pressure=0 never shrinks dentries during reclaim; the
    default pressure of 100 shrinks one dentry cache per reclaim pass."""
    vm = env.machine.kernel.vm
    with _vm_knobs(env, vfs_cache_pressure=0):
        with _reclaim_budget(env, slack_bytes=128 << 10):
            shrinks_before = vm.reclaim_stats.dcache_shrinks
            passes_before = vm.reclaim_stats.reclaims
            env.create_file(env.path("nopressure"), b"D" * (512 << 10))
            env.check(vm.reclaim_stats.reclaims > passes_before,
                      "the write forced a reclaim pass")
            env.check_equal(vm.reclaim_stats.dcache_shrinks, shrinks_before,
                            "pressure 0 leaves every dentry cache alone")
    with _vm_knobs(env, vfs_cache_pressure=100):
        with _reclaim_budget(env, slack_bytes=128 << 10):
            shrinks_before = vm.reclaim_stats.dcache_shrinks
            env.create_file(env.path("pressure"), b"E" * (512 << 10))
            env.check(vm.reclaim_stats.dcache_shrinks > shrinks_before,
                      "pressure 100 shrinks dentry caches as pages reclaim")


@generic(123, "auto", "quick", "reclaim")
def test_reclaim_conservation(env):
    """Every reclaimed page was either dropped clean or flushed first, and
    the byte counter agrees with the page counters."""
    vm = env.machine.kernel.vm
    with _reclaim_budget(env, slack_bytes=128 << 10):
        env.create_file(env.path("conserve"), b"F" * (768 << 10))
    stats = vm.reclaim_stats
    env.check_equal(stats.pages_reclaimed,
                    stats.pages_dropped + stats.pages_flushed,
                    "reclaimed == dropped-clean + flushed-dirty")
    env.check_equal(stats.bytes_reclaimed, stats.pages_reclaimed * 4096,
                    "byte and page accounting agree")


@generic(124, "auto", "quick", "reclaim")
def test_meminfo_coherent_under_pressure(env):
    """/proc/meminfo renders the same state reclaim enforces: Cached matches
    the registered caches and MemAvailable == MemFree + Cached."""
    def meminfo_kb():
        fd = env.sc.open("/proc/meminfo", OpenFlags.O_RDONLY)
        try:
            text = env.sc.read(fd, 1 << 14).decode()
        finally:
            env.sc.close(fd)
        return {line.split(":")[0]: int(line.split()[1])
                for line in text.splitlines()}

    vm = env.machine.kernel.vm
    with _reclaim_budget(env, slack_bytes=256 << 10):
        env.create_file(env.path("coherent"), b"G" * (512 << 10))
        fields = meminfo_kb()
        env.check_equal(fields["Cached"], vm.cached_bytes_total() >> 10,
                        "meminfo Cached matches the registered caches")
        env.check_equal(fields["MemAvailable"],
                        fields["MemFree"] + fields["Cached"],
                        "MemAvailable == MemFree + Cached")
        env.check_equal(fields["Dirty"], vm.dirty_bytes_total() >> 10,
                        "meminfo Dirty matches the registered engines")


def _bdi_and_sysfs_path(env):
    """The fs-under-test's backing-device info and its /sys/class/bdi path."""
    bdi = env.fs_under_test.writeback.bdi
    return bdi, f"/sys/class/bdi/{bdi.name}/read_ahead_kb"


def _count_shaped_fetches(env, path: str, chunk: int = 16 << 10) -> int:
    """Cold sequential read of ``path`` in ``chunk``-sized preads, returning
    the number of backing-device fetches (BDI shaped-read count)."""
    bdi = env.fs_under_test.writeback.bdi
    _echo_drop_caches(env, 1)
    before = bdi.stats.shaped_reads
    size = env.sc.stat(path).st_size
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        offset = 0
        while offset < size:
            data = env.sc.pread(fd, chunk, offset)
            if not data:
                break
            offset += len(data)
    finally:
        env.sc.close(fd)
    return bdi.stats.shaped_reads - before


@contextlib.contextmanager
def _read_shaping(env, read_ahead_kb: int | None):
    """Set the device's read bandwidth (so fetches are counted) and optionally
    its read_ahead_kb through the sysfs file; restore both afterwards."""
    bdi, knob_path = _bdi_and_sysfs_path(env)
    saved = (bdi.read_bandwidth_bytes_s, bdi.read_ahead_kb)
    bdi.read_bandwidth_bytes_s = 100 << 30          # ~free, but counted
    try:
        if read_ahead_kb is not None:
            fd = env.sc.open(knob_path, OpenFlags.O_WRONLY)
            try:
                env.sc.write(fd, f"{read_ahead_kb}\n".encode())
            finally:
                env.sc.close(fd)
        yield bdi
    finally:
        bdi.read_bandwidth_bytes_s, bdi.read_ahead_kb = saved


@generic(125, "auto", "quick", "readahead")
def test_per_device_read_ahead_honoured(env):
    """/sys/class/bdi/<dev>/read_ahead_kb steers the sequential-read fetch
    count: one backing fetch per readahead window."""
    path = env.path("ra-honoured")
    env.create_file(path, b"H" * (512 << 10))
    fetches = {}
    for window_kb in (64, 256):
        with _read_shaping(env, read_ahead_kb=window_kb):
            fetches[window_kb] = _count_shaped_fetches(env, path)
    env.check_equal(fetches[64], 8, "512 KiB / 64 KiB windows = 8 fetches")
    env.check_equal(fetches[256], 2, "512 KiB / 256 KiB windows = 2 fetches")


@generic(126, "auto", "quick", "readahead")
def test_read_ahead_zero_disables_readahead(env):
    """read_ahead_kb=0 turns readahead off: every chunk read is a fetch."""
    path = env.path("ra-off")
    env.create_file(path, b"I" * (256 << 10))
    with _read_shaping(env, read_ahead_kb=0):
        fetches = _count_shaped_fetches(env, path, chunk=16 << 10)
    env.check_equal(fetches, 16, "256 KiB in 16 KiB chunks = 16 fetches")


@generic(127, "auto", "quick", "readahead", "sysctl")
def test_read_ahead_sysfs_file_round_trip(env):
    """The sysfs knob reads back what was written and rejects bad input."""
    bdi, knob_path = _bdi_and_sysfs_path(env)
    saved = bdi.read_ahead_kb

    def read_knob() -> bytes:
        fd = env.sc.open(knob_path, OpenFlags.O_RDONLY)
        try:
            return env.sc.read(fd, 64)
        finally:
            env.sc.close(fd)

    try:
        fd = env.sc.open(knob_path, OpenFlags.O_WRONLY)
        try:
            env.sc.write(fd, b"512\n")
        finally:
            env.sc.close(fd)
        env.check_equal(read_knob(), b"512\n", "knob reads back the write")
        env.check_equal(bdi.read_ahead_kb, 512, "the live BDI object follows")
        for payload in (b"-1", b"words"):
            fd = env.sc.open(knob_path, OpenFlags.O_WRONLY)
            try:
                env.check_errno(errno.EINVAL, env.sc.write, fd, payload)
            finally:
                env.sc.close(fd)
        env.check_equal(bdi.read_ahead_kb, 512, "rejected writes change nothing")
        env.check_errno(errno.ENOENT, env.sc.stat,
                        "/sys/class/bdi/no-such-device/read_ahead_kb")
    finally:
        bdi.read_ahead_kb = saved


@generic(128, "auto", "quick", "readahead")
def test_read_bandwidth_shapes_cold_reads(env):
    """A read bandwidth charges exactly bytes/bandwidth of virtual time on
    cache-miss fetches; warm reads are never shaped."""
    path = env.path("read-shaped")
    env.create_file(path, b"J" * (256 << 10))
    bdi = env.fs_under_test.writeback.bdi
    saved = bdi.read_bandwidth_bytes_s
    _echo_drop_caches(env, 1)
    bdi.read_bandwidth_bytes_s = 50 << 20           # 50 MiB/s
    try:
        busy_before = bdi.stats.read_busy_ns
        bytes_before = bdi.stats.shaped_read_bytes
        env.read_file(path)
        fetched = bdi.stats.shaped_read_bytes - bytes_before
        env.check(fetched >= 256 << 10, "the cold read fetched the file")
        env.check_equal(bdi.stats.read_busy_ns - busy_before,
                        fetched * 1_000_000_000 // (50 << 20),
                        "shaping charges exactly bytes/bandwidth")
        warm_busy = bdi.stats.read_busy_ns
        env.read_file(path)
        env.check_equal(bdi.stats.read_busy_ns, warm_busy,
                        "page-cache hits pay no read-bandwidth cost")
    finally:
        bdi.read_bandwidth_bytes_s = saved


@generic(129, "auto", "quick", "reclaim")
def test_unbounded_budget_never_reclaims(env):
    """With reclaim disabled (the default) the budget reads as unbounded and
    no workload ever touches the reclaim counters."""
    vm = env.machine.kernel.vm
    env.check(vm.cache_budget_bytes() is None, "default budget is unbounded")
    stats_before = (vm.reclaim_stats.pages_reclaimed,
                    vm.reclaim_stats.reclaims)
    path = env.path("unbounded")
    env.create_file(path, b"K" * (2 << 20))
    env.read_file(path)
    env.check_equal((vm.reclaim_stats.pages_reclaimed,
                     vm.reclaim_stats.reclaims), stats_before,
                    "no reclaim activity with an unbounded budget")


@generic(130, "auto", "quick", "reclaim", "caching")
def test_reclaim_then_drop_caches_settles_clean(env):
    """After pressure, a full drop_caches leaves zero Cached bytes, the
    budget trivially satisfied and every byte still readable."""
    payload = b"".join(bytes([i % 199]) * 512 for i in range(1024))  # 512 KiB
    with _reclaim_budget(env, slack_bytes=128 << 10) as vm:
        path = env.path("settle")
        env.create_file(path, payload)
        _echo_drop_caches(env, 3)
        env.check_equal(vm.cached_bytes_total(), 0, "drop emptied the caches")
        budget = vm.cache_budget_bytes()
        env.check(budget is not None and budget >= 0, "budget stays defined")
        env.check_equal(env.read_file(path), payload, "content intact")


# ---------------------------------------------------------------------------
# Cgroup memory controller (generic/131-146)
# ---------------------------------------------------------------------------
CGROUPFS = "/sys/fs/cgroup"


def _cg_file_write(env, path: str, payload: bytes) -> None:
    fd = env.sc.open(path, OpenFlags.O_WRONLY)
    try:
        env.sc.write(fd, payload)
    finally:
        env.sc.close(fd)


def _cg_file_read(env, path: str) -> bytes:
    fd = env.sc.open(path, OpenFlags.O_RDONLY)
    try:
        return env.sc.read(fd, 1 << 14)
    finally:
        env.sc.close(fd)


def _memcg_stat(env, cg_dir: str) -> dict[str, int]:
    """Parse a cgroup's ``memory.stat`` into a dict."""
    text = _cg_file_read(env, f"{cg_dir}/memory.stat").decode()
    return {line.split()[0]: int(line.split()[1])
            for line in text.splitlines() if line}


@contextlib.contextmanager
def _memcg(env, max_bytes: int | None = None, high_bytes: int | None = None,
           attach: bool = True):
    """A fresh cgroup with the test process attached, everything applied
    through the cgroupfs files (the operator path); detaches the process and
    removes the cgroup afterwards, so the shared machine stays untouched."""
    kernel = env.machine.kernel
    pid = env.sc.process.pid
    original = kernel.cgroups.cgroup_of(pid).path
    name = env.unique_name("memcg")
    cg_dir = f"{CGROUPFS}/{name}"
    env.sc.mkdir(cg_dir)
    try:
        if max_bytes is not None:
            _cg_file_write(env, f"{cg_dir}/memory.max", f"{max_bytes}\n".encode())
        if high_bytes is not None:
            _cg_file_write(env, f"{cg_dir}/memory.high", f"{high_bytes}\n".encode())
        if attach:
            _cg_file_write(env, f"{cg_dir}/cgroup.procs", f"{pid}\n".encode())
        yield kernel.cgroups.lookup(f"/{name}"), cg_dir
    finally:
        procs_file = f"{CGROUPFS}{original.rstrip('/')}/cgroup.procs"
        _cg_file_write(env, procs_file, f"{pid}\n".encode())
        env.sc.rmdir(cg_dir)


@generic(131, "auto", "quick", "cgroup")
def test_memory_current_tracks_page_cache(env):
    """memory.current follows the cgroup's page-cache charges exactly: zero
    at creation, the written bytes while resident, zero after drop_caches."""
    with _memcg(env) as (cgroup, cg_dir):
        env.check_equal(_cg_file_read(env, f"{cg_dir}/memory.current"), b"0\n",
                        "a fresh cgroup holds no charges")
        env.create_file(env.path("charged"), b"C" * (256 << 10))
        current = int(_cg_file_read(env, f"{cg_dir}/memory.current"))
        env.check_equal(current, 256 << 10,
                        "memory.current charges the written pages")
        env.check_equal(current, cgroup.mem_cache_bytes,
                        "the file renders the live counter")
        _echo_drop_caches(env, 1)
        env.check_equal(int(_cg_file_read(env, f"{cg_dir}/memory.current")), 0,
                        "dropping the caches uncharges everything")


@generic(132, "auto", "quick", "cgroup")
def test_memcg_charge_uncharge_conservation(env):
    """Hierarchical conservation: the root cgroup's counters equal the
    kernel-wide Cached/Dirty totals at every step — charges can neither leak
    nor double-count."""
    kernel = env.machine.kernel
    root, vm = kernel.cgroups.root, kernel.vm

    def check(when: str) -> None:
        env.check_equal(root.mem_cache_bytes, vm.cached_bytes_total(),
                        f"root memory.current == Cached ({when})")
        env.check_equal(root.mem_dirty_bytes, vm.dirty_bytes_total(),
                        f"root file_dirty == Dirty ({when})")

    check("before")
    with _memcg(env) as (cgroup, _cg_dir):
        env.create_file(env.path("conserve"), b"K" * (512 << 10))
        check("while charged")
        env.check(cgroup.mem_cache_bytes <= root.mem_cache_bytes,
                  "a child's charges are part of the root's")
        env.read_file(env.path("conserve"))
        check("after re-reading")
    _echo_drop_caches(env, 1)
    check("after drop_caches")


@generic(133, "auto", "quick", "cgroup", "reclaim")
def test_memory_max_honoured_by_reclaim(env):
    """Growth past memory.max triggers per-cgroup reclaim: usage is bounded
    by the limit while the data stays fully readable."""
    payload = b"".join(bytes([i % 241]) * 1024 for i in range(1024))  # 1 MiB
    with _memcg(env, max_bytes=256 << 10) as (cgroup, cg_dir):
        path = env.path("bounded")
        env.create_file(path, payload)
        current = int(_cg_file_read(env, f"{cg_dir}/memory.current"))
        env.check(current <= 256 << 10,
                  f"memory.current {current} exceeds memory.max")
        env.check(cgroup.memcg_stats.pages_reclaimed > 0,
                  "outgrowing the limit reclaimed pages")
        env.check_equal(env.read_file(path), payload,
                        "reclaimed data reads back intact")


@generic(134, "auto", "quick", "cgroup")
def test_memory_max_zero_and_max_mean_unlimited(env):
    """Both ``0`` and ``max`` disable the limit: no workload reclaims, and
    the knob reads back "max"."""
    with _memcg(env) as (cgroup, cg_dir):
        for sentinel in (b"0\n", b"max\n"):
            _cg_file_write(env, f"{cg_dir}/memory.max", sentinel)
            env.check_equal(_cg_file_read(env, f"{cg_dir}/memory.max"), b"max\n",
                            f"{sentinel!r} reads back as unlimited")
            env.create_file(env.path(env.unique_name("unlimited")),
                            b"U" * (512 << 10))
            env.check_equal(cgroup.memcg_stats.pages_reclaimed, 0,
                            "an unlimited cgroup never reclaims")


@generic(135, "auto", "quick", "cgroup", "reclaim")
def test_memcg_hierarchy_tightest_limit_wins(env):
    """A parent's memory.max bounds its whole subtree even when the child's
    own limit is looser — the tightest limit along the path wins."""
    kernel = env.machine.kernel
    pid = env.sc.process.pid
    original = kernel.cgroups.cgroup_of(pid).path
    parent_dir = f"{CGROUPFS}/{env.unique_name('tight')}"
    child_dir = f"{parent_dir}/leaf"
    env.sc.mkdir(parent_dir)
    env.sc.mkdir(child_dir)
    try:
        _cg_file_write(env, f"{parent_dir}/memory.max", b"131072\n")
        _cg_file_write(env, f"{child_dir}/memory.max", b"1048576\n")
        _cg_file_write(env, f"{child_dir}/cgroup.procs", f"{pid}\n".encode())
        child = kernel.cgroups.cgroup_of(pid)
        env.check_equal(child.effective_memory_limit(), 131072,
                        "the parent's tighter limit is the effective one")
        env.create_file(env.path("treewide"), b"T" * (512 << 10))
        env.check(child.mem_cache_bytes <= 131072,
                  "the child's usage is bounded by the parent's limit")
        parent = child.parent
        env.check(parent.mem_cache_bytes <= 131072,
                  "the parent's hierarchical usage respects its own limit")
        env.check(parent.memcg_stats.pages_reclaimed > 0,
                  "the over-limit parent did the reclaiming")
    finally:
        _cg_file_write(env, f"{CGROUPFS}{original.rstrip('/')}/cgroup.procs",
                       f"{pid}\n".encode())
        env.sc.rmdir(child_dir)
        env.sc.rmdir(parent_dir)


@generic(136, "auto", "quick", "cgroup", "reclaim")
def test_memcg_reclaim_is_isolated_per_cgroup(env):
    """A greedy cgroup under pressure reclaims only its own pages: a
    neighbour's charges — and resident pages — survive untouched."""
    with _memcg(env) as (neighbour, _dir):
        env.create_file(env.path("neighbour"), b"N" * (256 << 10))
        env.read_file(env.path("neighbour"))
        neighbour_usage = neighbour.mem_cache_bytes
        env.check_equal(neighbour_usage, 256 << 10, "the neighbour is charged")
        with _memcg(env, max_bytes=128 << 10) as (greedy, _greedy_dir):
            env.create_file(env.path("greedy"), b"G" * (512 << 10))
            env.check(greedy.memcg_stats.pages_reclaimed > 0,
                      "the greedy cgroup was reclaimed")
            env.check_equal(neighbour.mem_cache_bytes, neighbour_usage,
                            "the neighbour's charges are untouched")
        # The neighbour's pages are still resident: re-reading them is pure
        # page-cache hits (no new misses).
        misses_before = env.fs_under_test.page_cache.stats.misses
        env.read_file(env.path("neighbour"))
        env.check_equal(env.fs_under_test.page_cache.stats.misses, misses_before,
                        "the neighbour's pages stayed resident")


@generic(137, "auto", "quick", "cgroup", "reclaim", "writeback")
def test_memcg_reclaim_flushes_dirty_pages_first(env):
    """Per-cgroup reclaim writes dirty victims back through the owning
    engine (reason "reclaim") before dropping them; the data survives."""
    engine = env.fs_under_test.writeback
    payload = b"".join(bytes([i % 233]) * 1024 for i in range(256))  # 256 KiB
    with _vm_knobs(env, dirty_background_bytes=0, dirty_bytes=0):
        with _memcg(env, max_bytes=128 << 10) as (cgroup, _dir):
            reclaim_before = engine.stats.flushes_by_reason.get("reclaim", 0)
            path = env.path("dirty-victim")
            fd = env.sc.open(path, CREAT_WR, 0o644)
            try:
                env.sc.write(fd, payload)
                env.check(cgroup.memcg_stats.pages_flushed > 0,
                          "reclaim flushed dirty pages before dropping them")
                env.check(engine.stats.flushes_by_reason.get("reclaim", 0)
                          > reclaim_before,
                          "the owning engine saw reclaim-reason flushes")
                env.check(cgroup.mem_cache_bytes <= 128 << 10,
                          "usage settled under the limit")
            finally:
                env.sc.close(fd)
            env.check_equal(env.read_file(path), payload,
                            "reclaimed dirty data reads back intact")


@generic(138, "auto", "quick", "cgroup", "writeback")
def test_memory_high_throttle_is_deterministic(env):
    """Writers over memory.high stall for exactly bytes * throttle_ns_per_byte
    of virtual time — twice the same workload, twice the same stall."""
    kernel = env.machine.kernel
    rate = kernel.memcg.throttle_ns_per_byte
    record = 64 << 10

    def run_once(tag: str) -> tuple[int, int]:
        with _memcg(env, high_bytes=record) as (cgroup, _dir):
            fd = env.sc.open(env.path(f"throttled-{tag}"), CREAT_WR, 0o644)
            try:
                for _ in range(4):
                    env.sc.write(fd, b"S" * record)
            finally:
                env.sc.close(fd)
            return (cgroup.memcg_stats.throttle_stall_ns,
                    cgroup.memcg_stats.throttle_events)

    first = run_once("a")
    second = run_once("b")
    env.check_equal(first, second, "the stall is deterministic")
    # The first record lands exactly at the ceiling (not over); the next
    # three each stall for their full size.
    env.check_equal(first, (3 * record * rate, 3),
                    "stall == bytes-dirtied-over-high * throttle rate")


@generic(139, "auto", "quick", "cgroup", "writeback")
def test_memcg_throttle_off_without_memory_high(env):
    """With no memory.high configured nothing ever stalls: the cgroup and
    engine throttle counters stay untouched."""
    engine = env.fs_under_test.writeback
    stalled_before = engine.stats.throttle_stall_ns
    with _memcg(env) as (cgroup, _dir):
        fd = env.sc.open(env.path("unthrottled"), CREAT_WR, 0o644)
        try:
            for _ in range(4):
                env.sc.write(fd, b"F" * (64 << 10))
        finally:
            env.sc.close(fd)
        env.check_equal(cgroup.memcg_stats.throttle_events, 0,
                        "no stall events without a ceiling")
        env.check_equal(cgroup.memcg_stats.throttle_stall_ns, 0,
                        "no stall time without a ceiling")
    env.check_equal(engine.stats.throttle_stall_ns, stalled_before,
                    "the engine saw no writer stalls")


@generic(140, "auto", "quick", "cgroup", "sysctl")
def test_memcg_file_validation(env):
    """Bad cgroupfs writes are rejected with the Linux errnos and leave the
    knobs untouched: EINVAL for garbage limits, EACCES for read-only files,
    ESRCH for unknown pids."""
    with _memcg(env, attach=False) as (_cgroup, cg_dir):
        for knob in ("memory.max", "memory.high"):
            for payload in (b"-1", b"words", b"1.5"):
                fd = env.sc.open(f"{cg_dir}/{knob}", OpenFlags.O_WRONLY)
                try:
                    env.check_errno(errno.EINVAL, env.sc.write, fd, payload)
                finally:
                    env.sc.close(fd)
            env.check_equal(_cg_file_read(env, f"{cg_dir}/{knob}"), b"max\n",
                            f"rejected writes left {knob} untouched")
        for readonly in ("memory.current", "memory.peak", "memory.stat"):
            fd = env.sc.open(f"{cg_dir}/{readonly}", OpenFlags.O_WRONLY)
            try:
                env.check_errno(errno.EACCES, env.sc.write, fd, b"1")
            finally:
                env.sc.close(fd)
        fd = env.sc.open(f"{cg_dir}/cgroup.procs", OpenFlags.O_WRONLY)
        try:
            env.check_errno(errno.ESRCH, env.sc.write, fd, b"999999")
            env.check_errno(errno.EINVAL, env.sc.write, fd, b"not-a-pid")
        finally:
            env.sc.close(fd)


@generic(141, "auto", "quick", "cgroup", "reclaim")
def test_memory_max_below_usage_reclaims_synchronously(env):
    """Lowering memory.max below the current usage reclaims synchronously
    during the write instead of rejecting it (Linux semantics)."""
    with _memcg(env) as (cgroup, cg_dir):
        env.create_file(env.path("pre-grown"), b"P" * (512 << 10))
        env.check_equal(cgroup.mem_cache_bytes, 512 << 10, "fully charged")
        _cg_file_write(env, f"{cg_dir}/memory.max", b"131072\n")
        env.check(cgroup.mem_cache_bytes <= 131072,
                  "the write itself reclaimed the excess")
        env.check(cgroup.memcg_stats.pages_reclaimed >= (384 << 10) // 4096,
                  "at least the excess pages were reclaimed")


@generic(142, "auto", "quick", "cgroup", "writeback")
def test_memory_stat_coherent_with_engine(env):
    """memory.stat renders the same state the caches and engines enforce:
    ``file`` matches the charged pages and ``file_dirty`` the engine's
    unflushed pending, before and after fsync."""
    engine = env.fs_under_test.writeback
    with _vm_knobs(env, dirty_background_bytes=0, dirty_bytes=0):
        with _memcg(env) as (_cgroup, cg_dir):
            fd = env.sc.open(env.path("stat-coherent"), CREAT_WR, 0o644)
            try:
                env.sc.write(fd, b"D" * (128 << 10))
                ino = env.sc.fstat(fd).st_ino
                stat = _memcg_stat(env, cg_dir)
                env.check_equal(stat["file"], 128 << 10, "file == charged pages")
                env.check_equal(stat["file_dirty"], engine.pending(ino),
                                "file_dirty == the engine's pending bytes")
                env.check_equal(stat["file_dirty"], 128 << 10,
                                "every written byte is still dirty")
                env.sc.fsync(fd)
                stat = _memcg_stat(env, cg_dir)
                env.check_equal(stat["file_dirty"], 0, "fsync uncharged dirty")
                env.check_equal(stat["file"], 128 << 10, "pages stay resident")
            finally:
                env.sc.close(fd)


@generic(143, "auto", "quick", "cgroup")
def test_cgroup_procs_round_trip(env):
    """Writing a pid to cgroup.procs moves the process: the file lists it
    and /proc/<pid>/cgroup follows, exactly what Cntr does to its injected
    tools."""
    pid = env.sc.process.pid
    with _memcg(env) as (cgroup, cg_dir):
        procs = _cg_file_read(env, f"{cg_dir}/cgroup.procs").decode()
        env.check(str(pid) in procs.split(), "cgroup.procs lists the member")
        proc_line = env.read_file(f"/proc/{pid}/cgroup").decode().strip()
        env.check_equal(proc_line, f"0::{cgroup.path}",
                        "/proc/<pid>/cgroup shows the new membership")
    proc_line = env.read_file(f"/proc/{pid}/cgroup").decode().strip()
    env.check(not proc_line.endswith(cgroup.path),
              "detaching restored the previous membership")


@generic(144, "auto", "quick", "cgroup")
def test_cgroupfs_mkdir_rmdir_semantics(env):
    """mkdir/rmdir on the cgroupfs create and remove live cgroups; EBUSY
    protects populated ones and removed paths vanish with ENOENT."""
    kernel = env.machine.kernel
    pid = env.sc.process.pid
    original = kernel.cgroups.cgroup_of(pid).path
    name = env.unique_name("mkrm")
    cg_dir = f"{CGROUPFS}/{name}"
    env.sc.makedirs(f"{cg_dir}/nested")
    env.check_equal(kernel.cgroups.lookup(f"/{name}/nested").name, "nested",
                    "mkdir created the cgroup in the live hierarchy")
    env.check("nested" in env.sc.listdir(cg_dir), "readdir shows the child")
    env.check_errno(errno.EBUSY, env.sc.rmdir, cg_dir)      # has a child
    _cg_file_write(env, f"{cg_dir}/nested/cgroup.procs", f"{pid}\n".encode())
    env.check_errno(errno.EBUSY, env.sc.rmdir, f"{cg_dir}/nested")  # has a proc
    _cg_file_write(env, f"{CGROUPFS}{original.rstrip('/')}/cgroup.procs",
                   f"{pid}\n".encode())
    env.sc.rmdir(f"{cg_dir}/nested")
    env.sc.rmdir(cg_dir)
    env.check_errno(errno.ENOENT, env.sc.stat, f"{cg_dir}/memory.current")
    env.check_errno(errno.ENOENT, env.sc.listdir, cg_dir)


@generic(145, "auto", "quick", "cgroup")
def test_memory_peak_high_watermark(env):
    """memory.peak is the high watermark of memory.current: it survives
    uncharging and only ever rises."""
    with _memcg(env) as (_cgroup, cg_dir):
        env.create_file(env.path("peak-a"), b"A" * (256 << 10))
        peak = int(_cg_file_read(env, f"{cg_dir}/memory.peak"))
        env.check(peak >= 256 << 10, "the peak covers the first burst")
        _echo_drop_caches(env, 1)
        env.check_equal(int(_cg_file_read(env, f"{cg_dir}/memory.current")), 0,
                        "the charges are gone")
        env.check_equal(int(_cg_file_read(env, f"{cg_dir}/memory.peak")), peak,
                        "the watermark survives the uncharge")
        env.create_file(env.path("peak-b"), b"B" * (512 << 10))
        env.check(int(_cg_file_read(env, f"{cg_dir}/memory.peak")) >= 512 << 10,
                  "a larger burst raises the watermark")


@generic(146, "auto", "quick", "cgroup", "reclaim")
def test_meminfo_coherent_under_memcg_reclaim(env):
    """Per-cgroup reclaim keeps /proc/meminfo coherent: Cached and Dirty
    track the registered caches and engines, and the root cgroup's counters
    agree with both."""
    kernel = env.machine.kernel
    with _memcg(env, max_bytes=128 << 10) as (cgroup, _dir):
        env.create_file(env.path("coherent"), b"M" * (512 << 10))
        env.check(cgroup.memcg_stats.pages_reclaimed > 0, "pressure reclaimed")
        fields = {}
        for line in env.read_file("/proc/meminfo").decode().splitlines():
            fields[line.split(":")[0]] = int(line.split()[1])
        vm = kernel.vm
        env.check_equal(fields["Cached"], vm.cached_bytes_total() >> 10,
                        "meminfo Cached matches the registered caches")
        env.check_equal(fields["Dirty"], vm.dirty_bytes_total() >> 10,
                        "meminfo Dirty matches the registered engines")
        env.check_equal(kernel.cgroups.root.mem_cache_bytes,
                        vm.cached_bytes_total(),
                        "root memory.current == Cached, byte-exact")


# ---------------------------------------------------------------------------
# The four paper-documented CntrFS failures
# ---------------------------------------------------------------------------
@generic(228, "auto", "quick")
def test_rlimit_fsize_enforced(env):
    """generic/228: writes beyond RLIMIT_FSIZE must fail with EFBIG.

    CntrFS replays file operations in the server process, where the caller's
    RLIMIT_FSIZE is neither set nor enforced, so this fails on CntrFS.
    """
    path = env.path("rlimit")
    writer = unprivileged(env, uid=0, keep_caps=frozenset(KNOWN_CAPABILITIES))
    writer.setrlimit_fsize(4096)
    fd = writer.open(path, CREAT_WR, 0o644)
    try:
        writer.write(fd, b"A" * 4096)
        env.check_errno(errno.EFBIG, writer.pwrite, fd, b"over the limit", 4096)
    finally:
        writer.close(fd)


@generic(375, "auto", "quick", "perms")
def test_setgid_cleared_with_acl(env):
    """generic/375: chmod must clear setgid when the owner is not in the owning group.

    CntrFS delegates POSIX ACL interpretation to the backing filesystem (via
    setfsuid/setfsgid on inode creation), so the ACL-aware clearing does not
    happen and the setgid bit survives — the paper's first failure case.
    """
    path = env.path("acl-setgid")
    env.create_file(path, b"x", mode=0o644)
    env.sc.chown(path, 6000, 6100)
    acl = PosixAcl.from_mode(0o664)
    acl.add(AclTag.GROUP, 6200, 0o6)
    env.sc.set_acl(path, acl)
    owner = unprivileged(env, uid=6000, gid=6001,
                         keep_caps=frozenset({"CAP_DAC_OVERRIDE", "CAP_FOWNER"}))
    owner.chmod(path, 0o2755)
    mode = env.sc.stat(path).st_mode
    if mode & FileMode.S_ISGID:
        raise TestFailure("setgid bit was not cleared by chmod for an owner "
                          "outside the owning group of the ACL")


@generic(391, "auto", "quick", "aio")
def test_direct_io_open(env):
    """generic/391: O_DIRECT reads/writes.

    CntrFS does not support direct I/O because FUSE makes direct I/O and mmap
    mutually exclusive and CntrFS needs mmap to execute binaries, so the open
    fails — the paper's third failure case.
    """
    path = env.path("directio")
    env.create_file(path, b"D" * 8192)
    try:
        fd = env.sc.open(path, RW | OpenFlags.O_DIRECT)
    except FsError as exc:
        raise TestFailure(f"O_DIRECT open failed: {exc}") from exc
    try:
        env.check_equal(env.sc.read(fd, 4096), b"D" * 4096)
    finally:
        env.sc.close(fd)


@generic(426, "auto", "quick", "ioctl")
def test_exportable_file_handles(env):
    """generic/426: re-open files via name_to_handle_at/open_by_handle_at.

    CntrFS inodes are created on demand and destroyed when the kernel forgets
    them, so they cannot be exported as persistent handles — the paper's
    fourth failure case (and one many container runtimes block anyway).
    """
    path = env.path("handle")
    env.create_file(path, b"handle me")
    try:
        handle = env.sc.name_to_handle_at(path)
        fd = env.sc.open_by_handle_at(handle)
    except FsError as exc:
        raise TestFailure(f"file-handle export unsupported: {exc}") from exc
    try:
        env.check_equal(env.sc.read(fd, 100), b"handle me")
    finally:
        env.sc.close(fd)


# ---------------------------------------------------------------------------
# Advisory locking, extended: POSIX byte ranges, lock lifetime, advisoriness
# ---------------------------------------------------------------------------
def _lock_procs(env, count=2):
    return [unprivileged(env, uid=0, keep_caps=frozenset(KNOWN_CAPABILITIES))
            for _ in range(count)]


@generic(151, "auto", "quick", "locks")
def test_disjoint_ranges_do_not_conflict(env):
    path = env.path("range-disjoint")
    env.create_file(path, b"R" * 4096)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK, start=0, length=100)
        b.flock(fd2, LockType.F_WRLCK, start=100, length=100)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(152, "auto", "quick", "locks")
def test_overlapping_write_ranges_conflict(env):
    path = env.path("range-overlap")
    env.create_file(path, b"R" * 4096)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK, start=0, length=200)
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK,
                        start=100, length=200)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(153, "auto", "quick", "locks")
def test_read_lock_blocks_overlapping_write(env):
    path = env.path("range-rw")
    env.create_file(path, b"R" * 4096)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_RDLCK, start=0, length=500)
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK,
                        start=400, length=100)
        # ... but another read lock on the same bytes is fine.
        b.flock(fd2, LockType.F_RDLCK, start=400, length=100)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(154, "auto", "quick", "locks")
def test_unlock_releases_the_range(env):
    path = env.path("range-unlock")
    env.create_file(path, b"R" * 4096)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK, start=0, length=100)
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK,
                        start=50, length=10)
        a.flock(fd1, LockType.F_UNLCK, start=0, length=100)
        b.flock(fd2, LockType.F_WRLCK, start=50, length=10)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(155, "auto", "quick", "locks")
def test_to_eof_lock_covers_every_higher_offset(env):
    path = env.path("range-eof")
    env.create_file(path, b"R" * 4096)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK, start=1000, length=0)
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK,
                        start=1 << 30, length=16)
        b.flock(fd2, LockType.F_WRLCK, start=0, length=1000)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(156, "auto", "quick", "locks")
def test_same_owner_upgrades_read_to_write(env):
    path = env.path("range-upgrade")
    env.create_file(path, b"R" * 4096)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_RDLCK, start=0, length=100)
        a.flock(fd1, LockType.F_WRLCK, start=0, length=100)
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_RDLCK,
                        start=0, length=100)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(157, "auto", "quick", "locks")
def test_close_releases_range_locks(env):
    path = env.path("range-close")
    env.create_file(path, b"R" * 4096)
    a, b = _lock_procs(env)
    fd1 = a.open(path, RW)
    a.flock(fd1, LockType.F_WRLCK, start=0, length=0)
    a.close(fd1)
    fd2 = b.open(path, RW)
    try:
        b.flock(fd2, LockType.F_WRLCK, start=0, length=0)
    finally:
        b.close(fd2)


@generic(158, "auto", "quick", "locks")
def test_unlink_under_lock(env):
    """An unlinked-but-locked file keeps its lock; a fresh file under the
    same name starts with a clean lock table."""
    path = env.path("lock-unlink")
    env.create_file(path, b"L" * 64)
    a, b = _lock_procs(env)
    fd1 = a.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK)
        env.sc.unlink(path)
        env.create_file(path, b"fresh")
        fd2 = b.open(path, RW)
        try:
            b.flock(fd2, LockType.F_WRLCK)
        finally:
            b.close(fd2)
        env.check_equal(a.pread(fd1, 4, 0), b"LLLL",
                        "old inode stays readable under its lock")
    finally:
        a.close(fd1)


@generic(159, "auto", "quick", "locks")
def test_lock_follows_inode_across_rename(env):
    path = env.path("lock-rename-src")
    moved = env.path("lock-rename-dst")
    env.create_file(path, b"L" * 64)
    a, b = _lock_procs(env)
    fd1 = a.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK)
        env.sc.rename(path, moved)
        fd2 = b.open(moved, RW)
        try:
            env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK)
        finally:
            b.close(fd2)
    finally:
        a.close(fd1)


@generic(160, "auto", "quick", "locks")
def test_lock_shared_through_hard_links(env):
    path = env.path("lock-link-a")
    alias = env.path("lock-link-b")
    env.create_file(path, b"L" * 64)
    env.sc.link(path, alias)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(alias, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK)
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(161, "auto", "quick", "locks")
def test_writer_blocked_until_all_readers_release(env):
    path = env.path("lock-readers")
    env.create_file(path, b"L" * 64)
    r1, r2, w = _lock_procs(env, 3)
    fd1, fd2 = r1.open(path, RW), r2.open(path, RW)
    fd3 = w.open(path, RW)
    try:
        r1.flock(fd1, LockType.F_RDLCK)
        r2.flock(fd2, LockType.F_RDLCK)
        env.check_errno(errno.EAGAIN, w.flock, fd3, LockType.F_WRLCK)
        r1.flock(fd1, LockType.F_UNLCK)
        env.check_errno(errno.EAGAIN, w.flock, fd3, LockType.F_WRLCK)
        r2.flock(fd2, LockType.F_UNLCK)
        w.flock(fd3, LockType.F_WRLCK)
    finally:
        r1.close(fd1)
        r2.close(fd2)
        w.close(fd3)


@generic(162, "auto", "quick", "locks")
def test_conflict_is_per_range_not_per_file(env):
    path = env.path("lock-per-range")
    env.create_file(path, b"L" * 4096)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK, start=0, length=100)
        a.flock(fd1, LockType.F_WRLCK, start=200, length=100)
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK,
                        start=250, length=10)
        b.flock(fd2, LockType.F_WRLCK, start=100, length=100)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(163, "auto", "quick", "locks")
def test_locks_survive_fsync_and_sync(env):
    path = env.path("lock-sync")
    env.create_file(path, b"L" * 64)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK)
        a.pwrite(fd1, b"sync me", 0)
        a.fsync(fd1)
        env.make_durable()
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(164, "auto", "quick", "locks")
def test_partial_unlock_keeps_other_ranges(env):
    path = env.path("lock-partial")
    env.create_file(path, b"L" * 4096)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK, start=0, length=100)
        a.flock(fd1, LockType.F_WRLCK, start=200, length=100)
        a.flock(fd1, LockType.F_UNLCK, start=0, length=100)
        b.flock(fd2, LockType.F_WRLCK, start=0, length=100)
        env.check_errno(errno.EAGAIN, b.flock, fd2, LockType.F_WRLCK,
                        start=200, length=100)
    finally:
        a.close(fd1)
        b.close(fd2)


@generic(165, "auto", "quick", "locks")
def test_locks_are_advisory(env):
    path = env.path("lock-advisory")
    env.create_file(path, b"A" * 64)
    a, b = _lock_procs(env)
    fd1, fd2 = a.open(path, RW), b.open(path, RW)
    try:
        a.flock(fd1, LockType.F_WRLCK)
        # A non-cooperating process reads and writes straight through.
        env.check_equal(b.pread(fd2, 4, 0), b"AAAA", "advisory read")
        b.pwrite(fd2, b"BBBB", 0)
        env.check_equal(a.pread(fd1, 4, 0), b"BBBB", "advisory write")
    finally:
        a.close(fd1)
        b.close(fd2)


# ---------------------------------------------------------------------------
# Crash consistency: power-fail injection and journal replay.  Every case
# starts with make_durable() so state left by earlier cases in the shared
# environment is pinned down before the power goes out.
# ---------------------------------------------------------------------------
def _drop_fd_raw(env, fd: int) -> None:
    """Lose a descriptor the way a power failure does: no close, no flush."""
    env.sc.process.fds.pop(fd, None)


@generic(166, "auto", "quick", "crash")
def test_fsynced_data_survives_power_fail(env):
    env.make_durable()
    path = env.path("crash-fsynced")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"promised" * 512)
    env.sc.fsync(fd)
    _drop_fd_raw(env, fd)
    env.power_fail()
    env.check_equal(env.read_file(path), b"promised" * 512,
                    "fsync is a durability promise")


@generic(167, "auto", "quick", "crash")
def test_unsynced_create_loss_semantics(env):
    """ext4 loses an uncommitted create entirely; CntrFS keeps it because
    the server applied the metadata (and the close-time flush) synchronously
    — the paper's delayed-sync consistency trade-off, made visible."""
    env.make_durable()
    path = env.path("crash-unsynced")
    env.create_file(path, b"maybe" * 100)
    env.power_fail()
    if env.is_cntrfs:
        env.check_equal(env.read_file(path), b"maybe" * 100,
                        "server-side state survives a client crash")
    else:
        env.check(not env.sc.exists(path),
                  "an uncommitted create must not survive an ext4 crash")


@generic(168, "auto", "quick", "crash")
def test_dirty_tail_after_fsync_is_lost(env):
    env.make_durable()
    path = env.path("crash-tail")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"D" * 1000)
    env.sc.fsync(fd)
    env.sc.pwrite(fd, b"T" * 8192, 1000)   # never flushed
    _drop_fd_raw(env, fd)
    env.power_fail()
    env.check_equal(env.read_file(path), b"D" * 1000,
                    "the unflushed tail dies with the caches")


@generic(169, "auto", "quick", "crash")
def test_fdatasync_makes_extension_durable(env):
    env.make_durable()
    path = env.path("crash-fdatasync")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"E" * 3000)
    env.sc.fdatasync(fd)
    _drop_fd_raw(env, fd)
    env.power_fail()
    env.check_equal(env.read_file(path), b"E" * 3000,
                    "fdatasync covers data and the i_size extension")


@generic(170, "auto", "quick", "crash")
def test_osync_writes_survive(env):
    env.make_durable()
    path = env.path("crash-osync")
    fd = env.sc.open(path, CREAT_WR | OpenFlags.O_SYNC, 0o644)
    env.sc.write(fd, b"S" * 2048)
    _drop_fd_raw(env, fd)
    env.power_fail()
    env.check_equal(env.read_file(path), b"S" * 2048,
                    "O_SYNC data is durable at write return")


@generic(171, "auto", "quick", "crash")
def test_committed_truncate_down_survives(env):
    env.make_durable()
    path = env.path("crash-shrink")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"F" * 4096)
    env.sc.fsync(fd)
    env.sc.ftruncate(fd, 100)
    env.sc.fsync(fd)
    _drop_fd_raw(env, fd)
    env.power_fail()
    env.check_equal(env.read_file(path), b"F" * 100,
                    "a committed shrink holds after replay")


@generic(172, "auto", "quick", "crash")
def test_truncate_down_then_up_reads_zeros(env):
    """Replay must never resurrect pre-truncate bytes in the re-extended gap
    — the delayed-allocation guarantee (zeros, not stale data)."""
    env.make_durable()
    path = env.path("crash-downup")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"G" * 1000)
    env.sc.fsync(fd)
    env.sc.ftruncate(fd, 100)
    env.sc.ftruncate(fd, 2000)
    env.sc.fsync(fd)
    _drop_fd_raw(env, fd)
    env.power_fail()
    data = env.read_file(path)
    env.check_equal(len(data), 2000, "committed size")
    env.check_equal(data[:100], b"G" * 100, "surviving prefix")
    env.check_equal(data[100:], b"\x00" * 1900,
                    "the re-extended gap must read zeros, not stale bytes")


@generic(173, "auto", "quick", "crash")
def test_committed_punch_stays_punched(env):
    env.make_durable()
    path = env.path("crash-punch")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"H" * 8192)
    env.sc.fsync(fd)
    env.sc.fallocate(fd, FallocateMode.PUNCH_HOLE | FallocateMode.KEEP_SIZE,
                     0, 4096)
    env.sc.fsync(fd)
    _drop_fd_raw(env, fd)
    env.power_fail()
    data = env.read_file(path)
    env.check_equal(data[:4096], b"\x00" * 4096, "the hole survives the crash")
    env.check_equal(data[4096:], b"H" * 4096, "bytes outside the hole survive")


@generic(174, "auto", "quick", "crash")
def test_uncommitted_truncate_loss_semantics(env):
    env.make_durable()
    path = env.path("crash-uncommitted-trunc")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"I" * 500)
    env.sc.fsync(fd)
    env.sc.ftruncate(fd, 10)       # never committed
    _drop_fd_raw(env, fd)
    env.power_fail()
    data = env.read_file(path)
    if env.is_cntrfs:
        env.check_equal(data, b"I" * 10, "SETATTR reached the server")
    else:
        env.check_equal(data, b"I" * 500,
                        "an uncommitted shrink never happened on ext4")


@generic(175, "auto", "quick", "crash")
def test_committed_rename_survives(env):
    env.make_durable()
    src, dst = env.path("crash-ren-src"), env.path("crash-ren-dst")
    env.create_file(src, b"J" * 200)
    fd = env.sc.open(src, RW)
    env.sc.fsync(fd)
    env.sc.rename(src, dst)
    env.sc.fsync(fd)               # commits the rename (compound txn)
    _drop_fd_raw(env, fd)
    env.power_fail()
    env.check(not env.sc.exists(src), "the old name is gone")
    env.check_equal(env.read_file(dst), b"J" * 200, "the new name holds")


@generic(176, "auto", "quick", "crash")
def test_uncommitted_rename_loss_semantics(env):
    env.make_durable()
    src, dst = env.path("crash-uren-src"), env.path("crash-uren-dst")
    env.create_file(src, b"K" * 100)
    env.make_durable()
    env.sc.rename(src, dst)        # never committed
    env.power_fail()
    if env.is_cntrfs:
        env.check(env.sc.exists(dst) and not env.sc.exists(src),
                  "the server applied the rename synchronously")
    else:
        env.check(env.sc.exists(src) and not env.sc.exists(dst),
                  "an uncommitted rename rolls back on ext4")


@generic(177, "auto", "quick", "crash")
def test_committed_unlink_stays_gone(env):
    env.make_durable()
    path = env.path("crash-unlink")
    env.create_file(path, b"L" * 100)
    env.make_durable()
    env.sc.unlink(path)
    anchor = env.path("crash-unlink-anchor")
    fd = env.sc.open(anchor, CREAT_RW, 0o644)
    env.sc.fsync(fd)               # commits the whole compound transaction
    env.sc.close(fd)
    env.power_fail()
    env.check(not env.sc.exists(path),
              "a committed unlink must not resurrect the file")


@generic(178, "auto", "quick", "crash")
def test_fsync_commits_the_compound_transaction(env):
    """Like jbd2, any fsync publishes every running metadata record — a
    sibling file's create becomes durable on the back of an unrelated fsync."""
    env.make_durable()
    hitchhiker = env.path("crash-hitchhiker")
    env.create_file(hitchhiker, b"M" * 64)
    env.make_durable()             # data flushed; metadata already recorded
    anchor = env.path("crash-anchor")
    fd = env.sc.open(anchor, CREAT_RW, 0o644)
    env.sc.write(fd, b"N" * 64)
    env.sc.fsync(fd)
    env.sc.close(fd)
    env.power_fail()
    env.check_equal(env.read_file(hitchhiker), b"M" * 64,
                    "the sibling create rode the compound commit")
    env.check_equal(env.read_file(anchor), b"N" * 64, "the anchor itself")


@generic(179, "auto", "quick", "crash")
def test_committed_xattr_survives(env):
    env.make_durable()
    path = env.path("crash-xattr")
    env.create_file(path, b"O" * 10)
    env.sc.setxattr(path, "user.tag", b"sticky")
    fd = env.sc.open(path, RW)
    env.sc.fsync(fd)
    env.sc.close(fd)
    env.power_fail()
    env.check_equal(env.sc.getxattr(path, "user.tag"), b"sticky",
                    "committed xattr after replay")


@generic(180, "auto", "quick", "crash")
def test_committed_hard_link_survives(env):
    env.make_durable()
    path, alias = env.path("crash-link-a"), env.path("crash-link-b")
    env.create_file(path, b"P" * 100)
    env.sc.link(path, alias)
    fd = env.sc.open(path, RW)
    env.sc.fsync(fd)
    env.sc.close(fd)
    env.power_fail()
    env.check_equal(env.read_file(alias), b"P" * 100, "alias content")
    env.check_equal(env.sc.stat(path).st_nlink, 2, "link count after replay")


@generic(181, "auto", "quick", "crash")
def test_crash_with_no_dirty_state_is_a_noop(env):
    env.make_durable()
    path = env.path("crash-clean")
    env.create_file(path, b"Q" * 300)
    env.make_durable()
    before = env.read_file(path)
    env.power_fail()
    env.check_equal(env.read_file(path), before,
                    "a clean crash changes nothing observable")


@generic(182, "auto", "quick", "crash")
def test_double_power_fail(env):
    env.make_durable()
    path = env.path("crash-double")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"R" * 128)
    env.sc.fsync(fd)
    _drop_fd_raw(env, fd)
    env.power_fail()
    env.power_fail()
    env.check_equal(env.read_file(path), b"R" * 128,
                    "back-to-back crashes replay to the same state")


@generic(183, "auto", "quick", "crash")
def test_open_descriptor_works_after_remount(env):
    """Inode numbers are stable across replay (native) and nodeids outlive
    the client (CntrFS), so a surviving descriptor still reads the durable
    content after the crash."""
    env.make_durable()
    path = env.path("crash-fd")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"S" * 256)
    env.sc.fsync(fd)
    env.power_fail()
    try:
        env.check_equal(env.sc.pread(fd, 256, 0), b"S" * 256,
                        "durable bytes through a pre-crash descriptor")
    finally:
        env.sc.process.fds.pop(fd, None)


@generic(184, "auto", "quick", "crash")
def test_crash_disarms_writeback_timer(env):
    """A crashed engine must never fire against the shared clock; the
    remount re-arms it and background writeback works again."""
    env.make_durable()
    engine = env.fs_under_test.writeback
    path = env.path("crash-timer")
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"T" * 512)
    _drop_fd_raw(env, fd)
    env.fs_under_test.crash()
    env.check_equal(engine.total_pending, 0,
                    "crash_discard drops every pending byte")
    env.check(engine._flusher_timer is None,
              "the kupdate timer is disarmed by the crash")
    env.fs_under_test.remount()
    fd = env.sc.open(path, CREAT_RW, 0o644)
    env.sc.write(fd, b"U" * 64)
    env.sc.fsync(fd)
    env.sc.close(fd)
    env.check_equal(env.read_file(path), b"U" * 64, "writeback works again")


@generic(185, "auto", "quick", "crash")
def test_synced_directory_tree_survives(env):
    env.make_durable()
    base = env.path("crash-tree")
    env.sc.makedirs(f"{base}/a/b")
    env.create_file(f"{base}/a/x", b"V" * 10)
    env.create_file(f"{base}/a/b/y", b"W" * 20)
    env.sc.symlink(f"{base}/a/x", f"{base}/a/b/z")
    env.make_durable()
    env.power_fail()
    env.check_equal(env.read_file(f"{base}/a/x"), b"V" * 10, "file in tree")
    env.check_equal(env.read_file(f"{base}/a/b/y"), b"W" * 20, "nested file")
    env.check_equal(env.sc.readlink(f"{base}/a/b/z"), f"{base}/a/x", "symlink")


# ---------------------------------------------------------------------------
# Seeded stress soups: a deterministic fsstress-style op mix checked against
# a pure in-memory shadow model, with optional power failure + durability
# ledger.  Single-environment by construction — every assertion holds on
# both the native model and CntrFS.
# ---------------------------------------------------------------------------
def _soup_shadow_write(shadow: bytearray, offset: int, data: bytes) -> None:
    if offset > len(shadow):
        shadow.extend(b"\x00" * (offset - len(shadow)))
    shadow[offset:offset + len(data)] = data


def _stress_soup(env, seed: str, ops: int, pool: int = 4,
                 crash: bool = False) -> None:
    rng = DeterministicRandom(seed)
    base = env.path(f"soup-{seed.replace('/', '-')}")
    env.sc.makedirs(base)
    env.make_durable()
    names = [f"s{i}" for i in range(pool)]
    shadow: dict[str, bytearray] = {}
    fds: dict[str, int] = {}
    ledger: dict[str, bytes] = {}
    choices = ["write"] * 6 + ["truncate", "punch", "rename", "unlink",
                               "fsync", "fsync"]
    for _ in range(ops):
        op = rng.choice(choices)
        name, other = rng.choice(names), rng.choice(names)
        path = f"{base}/{name}"
        if op == "write":
            if name not in fds:
                fds[name] = env.sc.open(path, CREAT_RW, 0o644)
                shadow.setdefault(name, bytearray())
            offset = rng.randrange(0, 16384)
            data = bytes([rng.randrange(33, 127)]) * rng.randrange(1, 4096)
            env.sc.pwrite(fds[name], data, offset)
            _soup_shadow_write(shadow[name], offset, data)
            ledger.pop(name, None)
        elif op == "truncate" and name in fds:
            size = rng.randrange(0, 20000)
            env.sc.ftruncate(fds[name], size)
            blob = shadow[name]
            if size <= len(blob):
                del blob[size:]
            else:
                blob.extend(b"\x00" * (size - len(blob)))
            ledger.pop(name, None)
        elif op == "punch" and name in fds:
            offset = rng.randrange(0, 8192)
            length = rng.randrange(1, 8192)
            env.sc.fallocate(fds[name], FallocateMode.PUNCH_HOLE |
                             FallocateMode.KEEP_SIZE, offset, length)
            blob = shadow[name]
            end = min(len(blob), offset + length)
            if offset < end:
                blob[offset:end] = b"\x00" * (end - offset)
            ledger.pop(name, None)
        elif op == "rename" and name in shadow and name != other:
            env.sc.rename(path, f"{base}/{other}")
            if other in fds:
                env.sc.close(fds.pop(other))
            if name in fds:
                fds[other] = fds.pop(name)
            shadow[other] = shadow.pop(name)
            ledger.pop(name, None)
            ledger.pop(other, None)
        elif op == "unlink" and name in shadow:
            if name in fds:
                env.sc.close(fds.pop(name))
            env.sc.unlink(path)
            shadow.pop(name)
            ledger.pop(name, None)
        elif op == "fsync" and name in fds:
            env.sc.fsync(fds[name])
            ledger[name] = bytes(shadow[name])
    # Differential check: live tree vs the shadow model, byte for byte.
    for name, blob in sorted(shadow.items()):
        env.check_equal(env.read_file(f"{base}/{name}", size=1 << 20),
                        bytes(blob), f"shadow-model divergence on {name}")
    env.check_equal(sorted(env.sc.listdir(base)), sorted(shadow),
                    "directory listing vs shadow namespace")
    if crash:
        for fd in fds.values():
            env.sc.process.fds.pop(fd, None)
        fds.clear()
        env.power_fail()
        for name, blob in sorted(ledger.items()):
            env.check_equal(env.read_file(f"{base}/{name}", size=1 << 20),
                            blob, f"durability ledger broken for {name}")
    # Leave the shared environment clean (and durable) for later cases.
    for fd in fds.values():
        env.sc.close(fd)
    for name in env.sc.listdir(base):
        env.sc.unlink(f"{base}/{name}")
    env.sc.rmdir(base)
    env.make_durable()


def _stress_case(number: int, seed: str, ops: int, pool: int, crash: bool):
    @generic(number, "auto", "stress")
    def soup(env, _seed=seed, _ops=ops, _pool=pool, _crash=crash):
        _stress_soup(env, _seed, _ops, pool=_pool, crash=_crash)
    soup.__name__ = f"test_stress_soup_{number}"
    return soup


# generic/186-197: shadow-model soups of growing size and churn.
for _i, _number in enumerate(range(186, 198)):
    _stress_case(_number, seed=f"soup/{_number}", ops=40 + 10 * _i,
                 pool=3 + _i % 4, crash=False)

# generic/198-203: the same soups with a power failure and ledger audit.
for _i, _number in enumerate(range(198, 204)):
    _stress_case(_number, seed=f"soupcrash/{_number}", ops=50 + 15 * _i,
                 pool=3 + _i % 3, crash=True)


# ---------------------------------------------------------------------------
# Observability: PSI, tracepoints, vmstat and io.stat (generic/204-209)
# ---------------------------------------------------------------------------
TRACEFS = "/sys/kernel/debug/tracing"

#: The tracepoints the observability layer declares at kernel construction.
CORE_TRACEPOINT_NAMES = ("fuse.dispatch", "journal.commit", "memcg.reclaim",
                         "sched.switch", "sched.throttle", "writeback.flush")


def _psi_read(env, path: str) -> dict[str, dict[str, int]]:
    """Parse a pressure file into ``{kind: {avg10/avg60/avg300, total}}``
    with the averages as integer percent*100 and the total in microseconds."""
    out: dict[str, dict[str, int]] = {}
    for line in _cg_file_read(env, path).decode().splitlines():
        fields = line.split()
        row: dict[str, int] = {}
        for field in fields[1:]:
            key, _, value = field.partition("=")
            if key.startswith("avg"):
                whole, _, frac = value.partition(".")
                row[key] = int(whole) * 100 + int(frac)
            else:
                row[key] = int(value)
        out[fields[0]] = row
    return out


def _sum_cgroup(env, fn) -> int:
    """Sum ``fn(cgroup)`` over the whole cgroup hierarchy."""
    total = 0
    stack = [env.machine.kernel.cgroups.root]
    while stack:
        node = stack.pop()
        total += fn(node)
        stack.extend(node.children.values())
    return total


def _io_stall_sources_ns(env) -> int:
    """Every stall site that reports I/O pressure, from its own counters:
    BDI write/read shaping, synchronous ``vm.dirty_bytes`` throttling and
    (CntrFS only) FUSE background-queue congestion."""
    vm = env.machine.kernel.vm
    total = sum(bdi.stats.busy_ns + bdi.stats.read_busy_ns
                for bdi in vm.bdis().values())
    total += sum(engine.stats.dirty_throttle_ns for engine in vm.engines())
    connection = getattr(env.fs_under_test, "connection", None)
    if connection is not None:
        total += connection.queue_stats.congestion_wait_ns
    return total


@generic(204, "auto", "quick", "psi")
def test_psi_files_exist_and_parse(env):
    """The PSI surface renders the Linux format everywhere: system files
    under /proc/pressure, per-cgroup pressure files, full never exceeding
    some, and the tracefs control files listing the core tracepoints."""
    for resource in ("cpu", "memory", "io"):
        psi = _psi_read(env, f"/proc/pressure/{resource}")
        env.check_equal(sorted(psi), ["full", "some"], f"{resource} kinds")
        for kind in ("some", "full"):
            row = psi[kind]
            env.check_equal(sorted(row), ["avg10", "avg300", "avg60", "total"],
                            f"{resource} {kind} columns")
            for key in ("avg10", "avg60", "avg300"):
                env.check(0 <= row[key] <= 100_00,
                          f"{resource} {kind} {key} is a percentage")
        env.check(psi["full"]["total"] <= psi["some"]["total"],
                  f"{resource}: full time is a subset of some time")
    with _memcg(env) as (_cgroup, cg_dir):
        for name in ("cpu.pressure", "memory.pressure", "io.pressure"):
            psi = _psi_read(env, f"{cg_dir}/{name}")
            env.check_equal(sorted(psi), ["full", "some"], f"{name} kinds")
            env.check_equal(psi["some"]["total"], 0,
                            f"a fresh cgroup has no {name} stalls")
        env.check_equal(_cg_file_read(env, f"{cg_dir}/io.stat"), b"",
                        "a fresh cgroup has no io.stat rows")
        env.check_errno(errno.EACCES, _cg_file_write, env,
                        f"{cg_dir}/memory.pressure", b"0\n")
    events = _cg_file_read(env, f"{TRACEFS}/available_events").decode().split()
    for name in CORE_TRACEPOINT_NAMES:
        env.check(name in events, f"{name} is declared in available_events")
    env.check_equal(_cg_file_read(env, f"{TRACEFS}/tracing_on"), b"0\n",
                    "tracing starts disabled")


@generic(205, "auto", "quick", "psi")
def test_psi_cpu_decomposes_into_wait_and_throttle(env):
    """CPU pressure is exactly runnable wait plus ``cpu.max`` throttling:
    the system some total grows by ``stats.wait_ns`` + the hierarchy's
    ``throttled_ns`` delta, to the nanosecond, and the pressure files render
    the same total in microseconds."""
    kernel = env.machine.kernel
    clock = kernel.clock
    tracker = kernel.psi.system.tracker("cpu")
    base_some = tracker.total_some_ns
    base_full = tracker.total_full_ns
    base_throttled = _sum_cgroup(env, lambda n: n.cpu_stats.throttled_ns)

    name = env.unique_name("psi-capped")
    cg_dir = f"{CGROUPFS}/{name}"
    env.sc.mkdir(cg_dir)
    _cg_file_write(env, f"{cg_dir}/cpu.max", b"1000 10000")
    capped = env.machine.spawn_host_process(["/usr/bin/capped-tenant"])
    free = env.machine.spawn_host_process(["/usr/bin/free-tenant"])
    _cg_file_write(env, f"{cg_dir}/cgroup.procs",
                   f"{capped.process.pid}\n".encode())
    try:
        def spinner(ops, op_ns=100_000):
            def body():
                for _ in range(ops):
                    clock.advance(op_ns)
                    yield None
            return body

        controller = kernel.cpu_controller()
        controller.spawn(capped.process, spinner(100))
        controller.spawn(free.process, spinner(100))
        stats = controller.run()

        throttled = _sum_cgroup(
            env, lambda n: n.cpu_stats.throttled_ns) - base_throttled
        some = tracker.total_some_ns - base_some
        env.check(stats.wait_ns > 0, "a contended run accrues runnable wait")
        env.check(throttled > 0, "the 10% quota throttled the capped group")
        env.check_equal(some, stats.wait_ns + throttled,
                        "cpu some == wait + throttle, to the nanosecond")
        env.check_equal(tracker.total_full_ns - base_full, 0,
                        "cpu pressure never reports full time")
        rendered = _psi_read(env, "/proc/pressure/cpu")
        env.check_equal(rendered["some"]["total"],
                        tracker.total_some_ns // 1_000,
                        "/proc/pressure/cpu total renders microseconds")
        capped_psi = _psi_read(env, f"{cg_dir}/cpu.pressure")
        env.check(capped_psi["some"]["total"] > 0,
                  "the capped cgroup saw its own cpu pressure")
    finally:
        root_procs = f"{CGROUPFS}/cgroup.procs"
        _cg_file_write(env, root_procs, f"{capped.process.pid}\n".encode())
        env.sc.rmdir(cg_dir)


@generic(206, "auto", "quick", "psi")
def test_psi_memory_decomposes_into_throttle_and_reclaim(env):
    """Memory pressure is exactly ``memory.high`` write throttling (some)
    plus per-cgroup direct reclaim (some and full), checked against the
    memcg's own stall counters to the nanosecond."""
    kernel = env.machine.kernel
    tracker = kernel.psi.system.tracker("memory")
    base_some = tracker.total_some_ns
    base_full = tracker.total_full_ns
    base_throttle = _sum_cgroup(
        env, lambda n: n.memcg_stats.throttle_stall_ns)
    base_reclaim = _sum_cgroup(
        env, lambda n: n.memcg_stats.reclaim_cost_ns)
    with _vm_knobs(env, dirty_background_bytes=0, dirty_bytes=0), \
            _memcg(env, high_bytes=64 << 10) as (_cgroup, cg_dir):
        # Keep the descriptor open and the flush thresholds disabled so the
        # pages stay dirty until reclaim hits them (closing is itself a
        # flush point on the FUSE client).
        fd, _ino = _dirty_file(env, "psi-memstall", 256 << 10)
        try:
            throttle = _sum_cgroup(
                env,
                lambda n: n.memcg_stats.throttle_stall_ns) - base_throttle
            env.check(throttle > 0,
                      "writing past memory.high stalled the writer")
            # Lowering memory.max below usage reclaims synchronously; the
            # pages are still dirty, so the reclaim pays flush time.
            _cg_file_write(env, f"{cg_dir}/memory.max", b"65536\n")
            reclaim = _sum_cgroup(
                env,
                lambda n: n.memcg_stats.reclaim_cost_ns) - base_reclaim
            env.check(reclaim > 0, "direct reclaim charged virtual time")
            throttle = _sum_cgroup(
                env,
                lambda n: n.memcg_stats.throttle_stall_ns) - base_throttle
            some = tracker.total_some_ns - base_some
            full = tracker.total_full_ns - base_full
            env.check_equal(some, throttle + reclaim,
                            "memory some == high-throttle + reclaim, exactly")
            env.check_equal(full, reclaim,
                            "only reclaim counts as full memory pressure")
            rendered = _psi_read(env, "/proc/pressure/memory")
            env.check_equal(rendered["some"]["total"],
                            tracker.total_some_ns // 1_000,
                            "/proc/pressure/memory total renders microseconds")
            cg_psi = _psi_read(env, f"{cg_dir}/memory.pressure")
            env.check(cg_psi["some"]["total"] > 0,
                      "the limited cgroup saw its own memory pressure")
            env.check(cg_psi["full"]["total"] <= cg_psi["some"]["total"],
                      "per-cgroup full stays within some")
        finally:
            env.sc.close(fd)


@generic(207, "auto", "quick", "psi")
def test_psi_io_decomposes_into_shaping_and_throttle(env):
    """I/O pressure is exactly the sum of its stall sites — BDI write/read
    bandwidth shaping, synchronous ``vm.dirty_bytes`` throttling and FUSE
    queue congestion — checked against those counters to the nanosecond."""
    kernel = env.machine.kernel
    tracker = kernel.psi.system.tracker("io")
    base_some = tracker.total_some_ns
    base_full = tracker.total_full_ns
    base_sources = _io_stall_sources_ns(env)
    bdi = env.fs_under_test.writeback.bdi
    env.check(bdi is not None, "the fs under test flushes through a BDI")
    saved = (bdi.write_bandwidth_bytes_s, bdi.read_bandwidth_bytes_s)
    payload = b"I" * (512 << 10)
    path = env.path("psi-shaped")
    try:
        bdi.write_bandwidth_bytes_s = 8 << 20
        bdi.read_bandwidth_bytes_s = 8 << 20
        busy_before = bdi.stats.busy_ns
        read_before = bdi.stats.read_busy_ns
        env.create_file(path, payload)
        env.make_durable()
        env.check(bdi.stats.busy_ns > busy_before,
                  "the shaped flush charged write busy time")
        _echo_drop_caches(env, 1)
        env.check_equal(env.read_file(path), payload,
                        "shaped round trip preserves the data")
        env.check(bdi.stats.read_busy_ns > read_before,
                  "the cold read charged read busy time")
        # A tiny dirty budget makes the next write flush synchronously in
        # the writer's context: the dirty_limit stall site.
        with _vm_knobs(env, dirty_bytes=64 << 10):
            env.create_file(env.path("psi-throttled"), b"T" * (256 << 10))
            env.check(
                sum(e.stats.dirty_throttle_ns
                    for e in kernel.vm.engines()) > 0,
                "the dirty limit stalled a writer synchronously")
    finally:
        bdi.write_bandwidth_bytes_s, bdi.read_bandwidth_bytes_s = saved
    some = tracker.total_some_ns - base_some
    env.check(some > 0, "the workload accrued io pressure")
    env.check_equal(some, _io_stall_sources_ns(env) - base_sources,
                    "io some == shaping + dirty throttle + congestion, exactly")
    env.check_equal(tracker.total_full_ns - base_full, 0,
                    "none of these stalls report full io pressure")
    rendered = _psi_read(env, "/proc/pressure/io")
    env.check_equal(rendered["some"]["total"], tracker.total_some_ns // 1_000,
                    "/proc/pressure/io total renders microseconds")


@generic(208, "auto", "quick", "psi")
def test_vmstat_and_io_stat_track_writeback(env):
    """/proc/vmstat counters move with writeback and per-cgroup ``io.stat``
    charges the dirtying cgroup's device row, aggregated up to the root."""
    kernel = env.machine.kernel

    def vmstat() -> dict[str, int]:
        text = _cg_file_read(env, "/proc/vmstat").decode()
        return {line.split()[0]: int(line.split()[1])
                for line in text.splitlines() if line}

    before = vmstat()
    env.check(before["pgfault"] >= before["pgmajfault"],
              "major faults are a subset of faults")
    env.check(before["nr_dirtied"] >= before["nr_written"],
              "nothing is written that was never dirtied")
    payload = b"V" * (128 << 10)
    device = env.fs_under_test.writeback.bdi.name
    with _memcg(env) as (cgroup, cg_dir):
        env.create_file(env.path("psi-counted"), payload)
        env.make_durable()
        after = vmstat()
        env.check(after["nr_written"] >=
                  before["nr_written"] + len(payload) // 4096,
                  "sync advanced nr_written by at least the file's pages")
        env.check(after["nr_dirtied"] >= after["nr_written"],
                  "the dirtied/written invariant survives the sync")
        rows: dict[str, dict[str, int]] = {}
        for line in _cg_file_read(env, f"{cg_dir}/io.stat").decode().splitlines():
            dev, _, rest = line.partition(" ")
            rows[dev] = {key: int(value) for key, value in
                         (field.split("=") for field in rest.split())}
        env.check(device in rows, "the flush created the device's io.stat row")
        env.check(rows[device]["wbytes"] >= len(payload),
                  "wbytes charges the dirtying cgroup for the flushed bytes")
        env.check(rows[device]["wios"] >= 1, "the flush counted as a write io")
        root_stats = kernel.cgroups.root.io_stats[device]
        env.check(root_stats.wbytes >= rows[device]["wbytes"],
                  "the root cgroup aggregates the child's write charges")
        _echo_drop_caches(env, 1)
        env.check_equal(env.read_file(env.path("psi-counted")), payload,
                        "the cold read round-trips")
        refreshed = {}
        for line in _cg_file_read(env, f"{cg_dir}/io.stat").decode().splitlines():
            dev, _, rest = line.partition(" ")
            refreshed[dev] = {key: int(value) for key, value in
                              (field.split("=") for field in rest.split())}
        env.check(refreshed[device]["rbytes"] >= len(payload),
                  "the cache-miss read charged rbytes to the reader")
        env.check(refreshed[device]["rios"] >= 1,
                  "the cold read counted as a read io")


@generic(209, "auto", "quick", "psi")
def test_tracefs_controls_collection(env):
    """The tracefs files drive the tracer: per-tracepoint ``set_event``
    filters, ``tracing_on`` gating, ``echo > trace`` clearing, EINVAL on bad
    input and a bounded ring with explicit drop accounting."""
    tracer = env.machine.kernel.tracer

    def trace_lines() -> list[str]:
        return _cg_file_read(env, f"{TRACEFS}/trace").decode().splitlines()

    env.check_errno(errno.EINVAL, _cg_file_write, env,
                    f"{TRACEFS}/tracing_on", b"2\n")
    env.check_errno(errno.EACCES, _cg_file_write, env,
                    f"{TRACEFS}/available_events", b"x\n")
    env.check_errno(errno.EINVAL, _cg_file_write, env,
                    f"{TRACEFS}/set_event", b"not-category-dot-name\n")

    saved_capacity = tracer.capacity
    try:
        # Per-tracepoint gating: only writeback.flush is collected.
        _cg_file_write(env, f"{TRACEFS}/set_event", b"writeback.flush\n")
        env.check_equal(_cg_file_read(env, f"{TRACEFS}/set_event"),
                        b"writeback.flush\n", "set_event echoes the filter")
        env.create_file(env.path("psi-traced"), b"T" * 8192)
        env.make_durable()
        env.check(tracer.count("writeback.flush") >= 1,
                  "the filtered tracepoint collected its events")
        lines = trace_lines()
        env.check(any("writeback.flush" in line for line in lines
                      if not line.startswith("#")),
                  "the trace ring rendered the flush events")
        env.check(all("writeback.flush" in line for line in lines
                      if not line.startswith("#")),
                  "nothing outside the filter was collected")
        # Disable the tracepoint, clear the ring through the file.
        _cg_file_write(env, f"{TRACEFS}/set_event", b"!writeback.flush\n")
        _cg_file_write(env, f"{TRACEFS}/trace", b"\n")
        env.check_equal(tracer.count("writeback.flush"), 0,
                        "echo > trace cleared the ring and counters")
        env.check_equal(_cg_file_read(env, f"{TRACEFS}/set_event"), b"",
                        "!name removed the tracepoint from the filter")
        # Global switch + bounded ring: fsync storms overflow capacity 4.
        tracer.capacity = 4
        _cg_file_write(env, f"{TRACEFS}/tracing_on", b"1\n")
        fd = env.sc.open(env.path("psi-dropper"), CREAT_WR, 0o644)
        try:
            for _ in range(8):
                env.sc.write(fd, b"D" * 4096)
                env.sc.fsync(fd)
        finally:
            env.sc.close(fd)
        _cg_file_write(env, f"{TRACEFS}/tracing_on", b"0\n")
        env.check_equal(_cg_file_read(env, f"{TRACEFS}/tracing_on"), b"0\n",
                        "tracing_on reads back the switch")
        env.check(tracer.dropped > 0,
                  "events past the ring capacity counted as drops")
        header = trace_lines()[1]
        env.check(header.startswith("# entries: ")
                  and f"dropped: {tracer.dropped}" in header,
                  "the trace header reports the drop total")
        env.check(any(line.startswith("# dropped ")
                      for line in trace_lines()),
                  "per-tracepoint drop counters are rendered")
    finally:
        tracer.capacity = saved_capacity
        tracer.clear()
        tracer.clear_events()
        tracer.enabled = False


def tests_by_id() -> dict[str, TestCase]:
    """Map ``generic/NNN`` identifiers to test cases."""
    return {case.test_id: case for case in GENERIC_TESTS}
