"""Conformance-gate CLI: run the xfstests generic group and gate on pass rate.

This is the dedicated CI entry point the workflow's ``xfstests`` job runs per
environment (native ext4 baseline and CntrFS-over-tmpfs), separately from the
tier-1 unit tests, so a conformance regression surfaces as its own red job::

    PYTHONPATH=src python -m repro.xfstests --env native
    PYTHONPATH=src python -m repro.xfstests --env cntrfs --skip-paper-failures

The exit code is nonzero whenever ``RunSummary.pass_rate < 1.0``.  On CntrFS
the four paper-documented design-decision failures (generic/228, 375, 391,
426) are excluded with ``--skip-paper-failures`` — they are the expected
behaviour the paper reports, not regressions — so every remaining test must
pass on both environments.
"""

from __future__ import annotations

import argparse

from repro.xfstests.generic import GENERIC_TESTS, PAPER_FAILING_TESTS
from repro.xfstests.harness import (
    XfstestsRunner,
    cntrfs_environment,
    native_environment,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.xfstests", description=__doc__)
    parser.add_argument("--env", choices=("native", "cntrfs"), default="native",
                        help="environment to run the generic group against")
    parser.add_argument("--group", default=None,
                        help="restrict to one xfstests group (e.g. writeback)")
    parser.add_argument("--skip-paper-failures", action="store_true",
                        help="exclude the four paper-documented CntrFS failures")
    args = parser.parse_args(argv)

    factory = native_environment if args.env == "native" else cntrfs_environment
    cases = list(GENERIC_TESTS)
    if args.skip_paper_failures:
        cases = [case for case in cases if case.test_id not in PAPER_FAILING_TESTS]
    summary = XfstestsRunner(factory).run(cases, group=args.group)
    print(summary.format_table())
    if summary.pass_rate < 1.0:
        print(f"FAIL: pass rate {summary.pass_rate * 100:.2f}% < 100%")
        return 1
    print(f"OK: {summary.passed}/{summary.total} passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
