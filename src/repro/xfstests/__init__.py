"""xfstests-style filesystem regression suite.

The paper's completeness/correctness evaluation (§5.1) runs the ``generic``
group of xfstests against CntrFS mounted on top of tmpfs and reports 90 of 94
tests passing, with the four failures (#375, #228, #391, #426) attributable to
deliberate design choices in CntrFS rather than bugs.  This package contains a
118-test generic group implemented against the simulated syscall interface
(the paper's 94 plus 24 writeback/caching-surface cases added with the
memory-pressure model), a runner, environment builders for both the
native-filesystem baseline and the CntrFS-over-tmpfs configuration, and a CLI
(``python -m repro.xfstests``) that CI runs as a dedicated conformance gate.
"""

from repro.xfstests.harness import (
    TestCase,
    TestEnvironment,
    TestFailure,
    TestNotSupported,
    TestResult,
    XfstestsRunner,
    cntrfs_environment,
    native_environment,
)
from repro.xfstests.generic import GENERIC_TESTS, PAPER_FAILING_TESTS

__all__ = [
    "TestCase",
    "TestEnvironment",
    "TestFailure",
    "TestNotSupported",
    "TestResult",
    "XfstestsRunner",
    "cntrfs_environment",
    "native_environment",
    "GENERIC_TESTS",
    "PAPER_FAILING_TESTS",
]
