"""Benchmark harness: matched native/CntrFS environments and figure generators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.phoronix import ALL_WORKLOADS, IoZoneRead, ThreadedIoRead, Workload
from repro.core.cntrfs import CntrFS
from repro.fs.constants import OpenFlags
from repro.fs.ext4 import Ext4Fs
from repro.fuse.client import FuseClientFs
from repro.fuse.device import FuseDeviceHandle
from repro.fuse.options import FuseMountOptions
from repro.kernel.machine import Machine, boot
from repro.kernel.syscalls import Syscalls
from repro.slim.analyzer import DockerSlim, SlimReport
from repro.slim.catalogue import TOP50_CATALOGUE, build_catalogue_image


@dataclass
class ComparisonResult:
    """Native vs CntrFS comparison for one workload."""

    workload: str
    native_ns: int
    cntr_ns: int
    paper_overhead: float

    @property
    def overhead(self) -> float:
        """Relative overhead: virtual time through CntrFS / native virtual time."""
        return self.cntr_ns / self.native_ns if self.native_ns else float("inf")

    @property
    def cntr_is_faster(self) -> bool:
        """True when CntrFS beats the native filesystem on this workload."""
        return self.overhead < 1.0

    def agrees_with_paper_direction(self) -> bool:
        """True when measured and paper agree on who wins."""
        return (self.overhead >= 1.0) == (self.paper_overhead >= 1.0)


#: Post-construction kernel snapshots keyed by the constructor arguments.
#: The figures rebuild byte-identical environments over and over (Figure 2
#: alone builds two per workload); repeats fork the frozen image instead of
#: re-running boot + mounts + FUSE negotiation.  Forks are fully independent
#: deep clones, so measurements are unchanged.
_ENV_SNAPSHOTS: dict[tuple, object] = {}


class BenchEnvironment:
    """One measurement environment: an ext4 backing store reachable both
    natively and through a CntrFS mount."""

    def __init__(self, options: FuseMountOptions | None = None,
                 threads: int = 4, page_cache_mb: int = 2048,
                 delay_sync: bool = True) -> None:
        key = (options, threads, page_cache_mb, delay_sync)
        snap = _ENV_SNAPSHOTS.get(key)
        if snap is not None:
            _kernel, (clone,) = snap.fork()
            self.__dict__.update(clone.__dict__)
            return
        self.machine: Machine = boot(store_data=False,
                                     page_cache_bytes=page_cache_mb << 20)
        kernel = self.machine.kernel
        self.backing = Ext4Fs("bench-backing", kernel.clock, kernel.costs,
                              kernel.tracer, page_cache_bytes=page_cache_mb << 20)
        self.backing.store_data = False
        self.host_sc = self.machine.spawn_host_process(["/usr/bin/bench-host"])
        self.host_sc.makedirs("/data")
        self.host_sc.mount(self.backing, "/data")

        fuse_options = (options or FuseMountOptions.paper_defaults()).with_overrides(
            threads=threads)
        fuse_fd = self.host_sc.open("/dev/fuse", OpenFlags.O_RDWR)
        handle = self.host_sc.process.get_fd(fuse_fd)
        assert isinstance(handle, FuseDeviceHandle)
        export_root = kernel.vfs.resolve(self.host_sc._ctx(), "/data")  # noqa: SLF001
        self.server = CntrFS(kernel, self.host_sc.process, export_root=export_root,
                             threads=threads, delay_sync=delay_sync)
        handle.connection.attach_server(self.server)

        self.client_sc = self.machine.spawn_host_process(["/usr/bin/bench-client"])
        self.client = FuseClientFs("bench-cntrfs", kernel.clock, kernel.costs,
                                   handle.connection, options=fuse_options,
                                   tracer=kernel.tracer,
                                   page_cache_bytes=page_cache_mb << 20)
        self.client.store_data = False
        self.client_sc.makedirs("/cntr")
        self.client_sc.mount(self.client, "/cntr")
        _ENV_SNAPSHOTS[key] = kernel.snapshot(self)

    # ------------------------------------------------------------- access paths
    def native_access(self) -> tuple[Syscalls, str]:
        """Syscalls + base directory for the native (ext4) configuration."""
        return self.host_sc, "/data"

    def cntr_access(self) -> tuple[Syscalls, str]:
        """Syscalls + base directory for the CntrFS configuration."""
        return self.client_sc, "/cntr"

    def drop_caches(self) -> None:
        """Drop page/dentry caches machine-wide (cold-cache experiments).

        Goes through ``/proc/sys/vm/drop_caches`` — the operator path — which
        reaches every registered filesystem (the ext4 backing store *and* the
        CntrFS client), exactly like ``echo 3 > /proc/sys/vm/drop_caches`` on
        a real host.
        """
        fd = self.host_sc.open("/proc/sys/vm/drop_caches", OpenFlags.O_WRONLY)
        self.host_sc.write(fd, b"3\n")
        self.host_sc.close(fd)

    def drop_fuse_caches(self) -> None:
        """Invalidate only the FUSE-side caches, keeping the backing warm.

        This is *narrower* than ``drop_caches`` on purpose: the paper's
        cold-FUSE methodology measures a freshly mounted CntrFS against a
        backing store that just produced the data, so only the client's
        dentry/attribute/page caches are dropped (the simulation's stand-in
        for umount+mount of the FUSE client).
        """
        self.client.drop_caches()

    def measure(self, func) -> int:
        """Virtual nanoseconds spent inside ``func()``."""
        start = self.machine.clock.now_ns
        func()
        return self.machine.clock.now_ns - start


def _run_in(env: BenchEnvironment, workload: Workload, through_cntr: bool) -> int:
    """Prepare natively, run the measured phase through the requested path."""
    native_sc, native_base = env.native_access()
    run_sc, run_base = env.cntr_access() if through_cntr else (native_sc, native_base)
    workdir = f"{workload.name.lower().replace(' ', '-').replace(':', '').replace('.', '')}"
    native_sc.makedirs(f"{native_base}/{workdir}")
    workload.prepare(native_sc, f"{native_base}/{workdir}")
    # Settle the backing store (flush dirty state from prepare) but keep its
    # page cache warm — the benchmark runs on the same machine that produced
    # the input data, exactly as in the paper's methodology.  Only the
    # FUSE-side caches start cold.
    env.backing.sync()
    env.drop_fuse_caches()
    return env.measure(lambda: workload.run(run_sc, f"{run_base}/{workdir}"))


def run_comparison(workload: Workload, options: FuseMountOptions | None = None,
                   threads: int = 4) -> ComparisonResult:
    """Run one workload natively and through CntrFS, in fresh environments."""
    native_env = BenchEnvironment(options=options, threads=threads)
    native_ns = _run_in(native_env, workload, through_cntr=False)
    cntr_env = BenchEnvironment(options=options, threads=threads)
    cntr_ns = _run_in(cntr_env, workload, through_cntr=True)
    return ComparisonResult(workload=workload.name, native_ns=native_ns,
                            cntr_ns=cntr_ns, paper_overhead=workload.paper_overhead)


# ---------------------------------------------------------------------------
# Figure 2: relative overhead of every Phoronix workload
# ---------------------------------------------------------------------------
def figure2_phoronix_overheads(workloads: list[Workload] | None = None,
                               options: FuseMountOptions | None = None) -> list[ComparisonResult]:
    """Regenerate Figure 2: one ComparisonResult per workload."""
    results = []
    for workload in (workloads if workloads is not None else ALL_WORKLOADS):
        results.append(run_comparison(workload, options=options))
    return results


def format_figure2(results: list[ComparisonResult]) -> str:
    """Render Figure 2 as a table of measured vs paper overheads."""
    lines = [f"{'benchmark':<22} {'measured':>9} {'paper':>7}  agreement"]
    for r in results:
        agree = "yes" if r.agrees_with_paper_direction() else "NO"
        lines.append(f"{r.workload:<22} {r.overhead:>8.1f}x {r.paper_overhead:>6.1f}x  {agree}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 3: effectiveness of the individual optimizations
# ---------------------------------------------------------------------------
@dataclass
class OptimizationEffect:
    """Before/after measurement for one optimization toggle."""

    name: str
    metric: str
    before: float
    after: float
    paper_note: str = ""

    @property
    def improvement(self) -> float:
        """after / before (values > 1 mean the optimization helps)."""
        return self.after / self.before if self.before else float("inf")


def _throughput_mb_s(nbytes: int, duration_ns: int) -> float:
    if duration_ns <= 0:
        return float("inf")
    return (nbytes / 1e6) / (duration_ns / 1e9)


def _measure_cntr(workload: Workload, options: FuseMountOptions, threads: int = 4) -> int:
    env = BenchEnvironment(options=options, threads=threads)
    return _run_in(env, workload, through_cntr=True)


def figure3_optimization_effects() -> list[OptimizationEffect]:
    """Regenerate Figure 3: read cache, writeback cache, batching, splice read."""
    defaults = FuseMountOptions.paper_defaults()
    effects = []

    # (a) Read cache (FOPEN_KEEP_CACHE): threaded read throughput.
    read_wl = ThreadedIoRead()
    read_bytes = read_wl.size * read_wl.threads
    before_ns = _measure_cntr(read_wl, defaults.with_overrides(keep_cache=False))
    after_ns = _measure_cntr(read_wl, defaults.with_overrides(keep_cache=True))
    effects.append(OptimizationEffect(
        name="read_cache", metric="threaded read [MB/s]",
        before=_throughput_mb_s(read_bytes, before_ns),
        after=_throughput_mb_s(read_bytes, after_ns),
        paper_note="~10x higher throughput with FOPEN_KEEP_CACHE (Figure 3a)"))

    # (b) Writeback cache: sequential write throughput.
    from repro.bench.phoronix import IoZoneWrite
    write_wl = IoZoneWrite()
    before_ns = _measure_cntr(write_wl, defaults.with_overrides(writeback_cache=False))
    after_ns = _measure_cntr(write_wl, defaults.with_overrides(writeback_cache=True))
    effects.append(OptimizationEffect(
        name="writeback_cache", metric="sequential write [MB/s]",
        before=_throughput_mb_s(write_wl.size, before_ns),
        after=_throughput_mb_s(write_wl.size, after_ns),
        paper_note="+65% over native write throughput with writeback (Figure 3b)"))

    # (c) Batching (FUSE_PARALLEL_DIROPS): compilebench read-tree throughput.
    from repro.bench.phoronix import CompilebenchRead
    read_tree = CompilebenchRead()
    tree_bytes = read_tree.dirs * read_tree.files_per_dir * 5 * 1024
    before_ns = _measure_cntr(read_tree, defaults.with_overrides(parallel_dirops=False))
    after_ns = _measure_cntr(read_tree, defaults.with_overrides(parallel_dirops=True))
    effects.append(OptimizationEffect(
        name="batching", metric="read compiled tree [MB/s]",
        before=_throughput_mb_s(tree_bytes, before_ns),
        after=_throughput_mb_s(tree_bytes, after_ns),
        paper_note="~2.5x speedup with PARALLEL_DIROPS (Figure 3c)"))

    # (d) Splice read: sequential read throughput.
    seq_read = IoZoneRead()
    before_ns = _measure_cntr(seq_read, defaults.with_overrides(splice_read=False))
    after_ns = _measure_cntr(seq_read, defaults.with_overrides(splice_read=True))
    effects.append(OptimizationEffect(
        name="splice_read", metric="sequential read [MB/s]",
        before=_throughput_mb_s(seq_read.size, before_ns),
        after=_throughput_mb_s(seq_read.size, after_ns),
        paper_note="~5% improvement from splice reads (Figure 3d)"))
    return effects


# ---------------------------------------------------------------------------
# Figure 4: multithreading sweep
# ---------------------------------------------------------------------------
@dataclass
class ThreadSweepPoint:
    """Throughput measured with one CntrFS thread count."""

    threads: int
    duration_ns: int
    throughput_mb_s: float


def figure4_thread_sweep(thread_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
                         size_mb: int = 32) -> list[ThreadSweepPoint]:
    """Regenerate Figure 4: IOzone sequential read vs CntrFS thread count."""
    points = []
    for threads in thread_counts:
        workload = IoZoneRead(size_mb=size_mb)
        duration = _measure_cntr(workload, FuseMountOptions.paper_defaults(),
                                 threads=threads)
        points.append(ThreadSweepPoint(
            threads=threads, duration_ns=duration,
            throughput_mb_s=_throughput_mb_s(workload.size, duration)))
    return points


# ---------------------------------------------------------------------------
# Figure 5: Docker-Slim reduction of the Top-50 images
# ---------------------------------------------------------------------------
@dataclass
class SlimSweepResult:
    """Figure 5 data: per-image reductions plus the histogram."""

    reports: list[SlimReport] = field(default_factory=list)

    @property
    def reductions(self) -> list[float]:
        """Reduction percentages, one per image."""
        return [r.reduction_percent for r in self.reports]

    @property
    def mean_reduction(self) -> float:
        """Average reduction across the catalogue."""
        reductions = self.reductions
        return sum(reductions) / len(reductions) if reductions else 0.0

    def histogram(self, bucket_width: float = 10.0) -> dict[str, int]:
        """Reduction histogram with ``bucket_width``-percent buckets (Figure 5)."""
        buckets: dict[str, int] = {}
        for reduction in self.reductions:
            low = int(reduction // bucket_width) * int(bucket_width)
            high = low + int(bucket_width)
            key = f"{low}-{high}%"
            buckets[key] = buckets.get(key, 0) + 1
        return dict(sorted(buckets.items(), key=lambda kv: int(kv[0].split("-")[0])))

    def count_below(self, threshold_percent: float) -> int:
        """Images whose reduction is below the threshold."""
        return sum(1 for r in self.reductions if r < threshold_percent)

    def count_between(self, low: float, high: float) -> int:
        """Images whose reduction falls inside [low, high]."""
        return sum(1 for r in self.reductions if low <= r <= high)


def figure5_docker_slim(max_files: int | None = 400) -> SlimSweepResult:
    """Regenerate Figure 5: slim every catalogue image and report reductions."""
    slimmer = DockerSlim()
    result = SlimSweepResult()
    for entry in TOP50_CATALOGUE:
        image = build_catalogue_image(entry, max_files=max_files)
        result.reports.append(slimmer.analyze_static(image))
    return result


def format_figure5(result: SlimSweepResult) -> str:
    """Render Figure 5 as a histogram table."""
    lines = [f"mean reduction: {result.mean_reduction:.1f}% "
             f"(paper: 66.6%)",
             f"images below 10% reduction: {result.count_below(10.0)} (paper: 6)",
             "histogram (reduction % -> #images):"]
    for bucket, count in result.histogram().items():
        lines.append(f"  {bucket:>8}: {'#' * count} ({count})")
    return "\n".join(lines)
