"""Dirty-heavy writeback benchmark: ``vm.dirty_*`` tunables vs flush behaviour.

The unified writeback subsystem (:mod:`repro.fs.writeback`) makes the flush
policy of every filesystem a function of three knobs.  This harness opens the
dirty-heavy workload family the ROADMAP calls for — log writers, database
commit patterns, fsync storms — and sweeps the knobs *through the procfs
surface* (``/proc/sys/vm/*``), exactly the way an operator would tune a real
host, recording how flush count, flush size and virtual time respond.

Run it directly::

    PYTHONPATH=src python -m repro.bench.writeback --out BENCH_writeback.json

The committed ``BENCH_writeback.json`` is asserted by
``benchmarks/test_bench_writeback.py``: lower ``vm.dirty_bytes`` must mean
more, smaller flushes and (monotonically) more virtual time, because each
extra flush pays the fixed ``fuse_writeback_flush_ns`` cost while the byte
costs stay constant.  Under *default* tunables the engine reproduces the
seed's flush points exactly, so the hot-path `virtual_ms` pins in that test
double as the default-equivalence guarantee.

The memory-pressure model added two sweeps: ``dirty_ratio`` (the ratio knob
over a shrunk modelled memory, which must behave exactly like the byte
threshold it resolves to) and ``bdi_write_bandwidth`` (per-device bandwidth
shaping under a fixed flush cadence, whose virtual-time deltas are exactly
the BDI busy time while flushed bytes are conserved).

The reclaim subsystem added two more: ``mem_pressure`` (the same dirty
workload under a shrinking ``Kernel.mem`` with reclaim enabled — smaller
memory means more pages reclaimed, more reclaim-reason flushes and more
virtual time) and ``read_bdi`` (a cold sequential read through CntrFS under
a falling per-device read bandwidth — bytes fetched are conserved and the
virtual-time deltas are exactly the BDI read-busy time).  Rows of the older
sweeps carry none of the new fields, keeping them byte-identical.

The cgroup memory controller added the ``memcg`` sweep: the writing process
is attached to ``/bench/memcg`` through the cgroupfs files (mkdir +
``cgroup.procs``, the operator path) and a commit-per-record workload runs
under a shrinking ``memory.max`` with ``memory.high = max/2``.  A smaller
budget means more per-cgroup reclaim and more writer stall time, and the
virtual-time delta against the unlimited base row decomposes *exactly* into
``memcg_stall_ms + memcg_reclaim_cost_ms`` — the fsync cadence keeps the
client's reclaim victims clean (free drops) while the server's deferred
fsyncs leave the backing store's pages dirty, so every flush-before-drop
reclaim pays a cost the base row never does, and nothing can leak outside
the measured stall/reclaim windows.  As always, the older scenario rows
carry none of the new fields.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field

from repro.bench.harness import BenchEnvironment
from repro.fs.constants import OpenFlags


@dataclass
class WritebackRunResult:
    """One measured workload run under one tunable setting."""

    scenario: str
    tunables: dict = field(default_factory=dict)
    bytes_written: int = 0
    virtual_ms: float = 0.0
    wall_seconds: float = 0.0
    flushes: int = 0
    mean_flush_kb: float = 0.0
    flushes_by_reason: dict = field(default_factory=dict)
    flushed_kb: float = 0.0
    mem_total_mb: int = 0
    bdi_write_mb_s: int = 0
    bdi_busy_ms: float = 0.0
    #: Reclaim-sweep fields (None = not a reclaim row; keys omitted so the
    #: pre-reclaim scenario rows stay byte-identical).
    reclaim_mem_mb: int | None = None
    reclaimed_kb: float = 0.0
    reclaim_flushed_kb: float = 0.0
    #: Read-sweep fields (None = not a read row; keys omitted likewise).
    bdi_read_mb_s: int | None = None
    read_kb: float = 0.0
    bdi_read_busy_ms: float = 0.0
    #: Memcg-sweep fields (None = not a memcg row; keys omitted likewise).
    memcg_max_mb: int | None = None
    memcg_high_mb: int = 0
    memcg_reclaimed_kb: float = 0.0
    memcg_reclaim_flushed_kb: float = 0.0
    memcg_stall_ms: float = 0.0
    memcg_reclaim_cost_ms: float = 0.0

    def to_dict(self) -> dict:
        out = {
            "scenario": self.scenario,
            "tunables": dict(self.tunables),
            "bytes_written": self.bytes_written,
            "virtual_ms": round(self.virtual_ms, 3),
            "wall_seconds": round(self.wall_seconds, 3),
            "flushes": self.flushes,
            "mean_flush_kb": round(self.mean_flush_kb, 1),
            "flushes_by_reason": dict(self.flushes_by_reason),
            "flushed_kb": round(self.flushed_kb, 1),
            "mem_total_mb": self.mem_total_mb,
            "bdi_write_mb_s": self.bdi_write_mb_s,
            "bdi_busy_ms": round(self.bdi_busy_ms, 3),
        }
        if self.reclaim_mem_mb is not None:
            out["reclaim_mem_mb"] = self.reclaim_mem_mb
            out["reclaimed_kb"] = round(self.reclaimed_kb, 1)
            out["reclaim_flushed_kb"] = round(self.reclaim_flushed_kb, 1)
        if self.bdi_read_mb_s is not None:
            out["bdi_read_mb_s"] = self.bdi_read_mb_s
            out["read_kb"] = round(self.read_kb, 1)
            out["bdi_read_busy_ms"] = round(self.bdi_read_busy_ms, 3)
        if self.memcg_max_mb is not None:
            out["memcg_max_mb"] = self.memcg_max_mb
            out["memcg_high_mb"] = self.memcg_high_mb
            out["memcg_reclaimed_kb"] = round(self.memcg_reclaimed_kb, 1)
            out["memcg_reclaim_flushed_kb"] = round(self.memcg_reclaim_flushed_kb, 1)
            out["memcg_stall_ms"] = round(self.memcg_stall_ms, 3)
            out["memcg_reclaim_cost_ms"] = round(self.memcg_reclaim_cost_ms, 3)
        return out


def apply_vm_tunables(env: BenchEnvironment, settings: dict[str, int]) -> None:
    """Write the knobs through ``/proc/sys/vm`` (the operator path)."""
    sc = env.host_sc
    for knob, value in settings.items():
        fd = sc.open(f"/proc/sys/vm/{knob}", OpenFlags.O_WRONLY)
        sc.write(fd, f"{value}\n".encode())
        sc.close(fd)


def apply_memcg_limits(env: BenchEnvironment, max_mb: int, high_mb: int):
    """Create ``/bench/memcg`` through the cgroupfs, apply the memory knobs
    and move the writing (client) process into it — exactly the file writes
    an operator (or a container engine) would perform.  Returns the live
    cgroup so the harness can read its ``memory.stat`` counters."""
    sc = env.host_sc
    cg_dir = "/sys/fs/cgroup/bench/memcg"
    sc.makedirs(cg_dir)

    def write(name: str, payload: str) -> None:
        fd = sc.open(f"{cg_dir}/{name}", OpenFlags.O_WRONLY)
        sc.write(fd, payload.encode())
        sc.close(fd)

    write("memory.max", f"{max_mb << 20}\n" if max_mb else "max\n")
    write("memory.high", f"{high_mb << 20}\n" if high_mb else "max\n")
    write("cgroup.procs", f"{env.client_sc.process.pid}\n")
    return env.machine.kernel.cgroups.lookup("/bench/memcg")


def run_dirty_workload(scenario: str, settings: dict[str, int] | None = None,
                       size_mb: int = 16, record_kb: int = 64,
                       fsync_every: int = 0, think_ns: int = 0,
                       page_cache_mb: int = 512, mem_total_mb: int = 0,
                       bdi_write_mb_s: int = 0,
                       reclaim_mem_mb: int | None = None,
                       memcg_max_mb: int | None = None,
                       memcg_high_mb: int = 0) -> WritebackRunResult:
    """Write ``size_mb`` MiB sequentially through a CntrFS mount.

    ``fsync_every`` issues an fsync every N records (database commit /
    fsync-storm shapes); ``think_ns`` advances the virtual clock between
    records (a log writer with application think time, which is what makes
    ``dirty_expire_centisecs`` bite).  ``mem_total_mb`` shrinks the modelled
    memory so the ``vm.dirty_*_ratio`` knobs resolve to thresholds the
    workload can actually cross; ``bdi_write_mb_s`` caps the modelled write
    bandwidth of the CntrFS mount's backing-device info (0 = unshaped).

    ``reclaim_mem_mb`` runs the workload under memory pressure: the caches
    are dropped machine-wide first (so the sweep measures the workload, not
    the boot state), the modelled memory shrinks to the given size and
    reclaim is enabled — ``0`` keeps reclaim off but still performs the drop,
    giving the sweep a comparable baseline row.

    ``memcg_max_mb`` attaches the writing process to the ``/bench/memcg``
    cgroup (through the cgroupfs files) with the given ``memory.max`` —
    ``0`` attaches without limits, giving the sweep a comparable base row —
    and ``memcg_high_mb`` sets the ``memory.high`` throttle ceiling.
    """
    env = BenchEnvironment(page_cache_mb=page_cache_mb)
    if mem_total_mb:
        # Machine configuration, not a sysctl: the modelled RAM size.  The
        # MemInfo object is shared by reference, so /proc/meminfo and the
        # ratio resolution follow immediately.
        env.machine.kernel.mem.total_bytes = mem_total_mb << 20
    if bdi_write_mb_s:
        env.client.writeback.bdi.write_bandwidth_bytes_s = bdi_write_mb_s << 20
    if settings:
        apply_vm_tunables(env, settings)
    if reclaim_mem_mb is not None:
        env.drop_caches()
        mem = env.machine.kernel.mem
        mem.reserved_bytes = 0
        if reclaim_mem_mb:
            mem.total_bytes = reclaim_mem_mb << 20
            mem.reclaim_enabled = True
    memcg_group = None
    if memcg_max_mb is not None:
        memcg_group = apply_memcg_limits(env, memcg_max_mb, memcg_high_mb)
    sc, base = env.cntr_access()
    sc.makedirs(f"{base}/wb")
    total = size_mb << 20
    record = record_kb << 10
    chunk = b"w" * record
    clock = env.machine.clock
    engine = env.client.writeback

    start_virtual = clock.now_ns
    start_wall = time.perf_counter()
    fd = sc.open(f"{base}/wb/dirty.dat", OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
    try:
        written = 0
        records = 0
        while written < total:
            sc.write(fd, chunk)
            written += record
            records += 1
            if think_ns:
                clock.advance(think_ns)
            if fsync_every and records % fsync_every == 0:
                sc.fsync(fd)
    finally:
        sc.close(fd)
    wall = time.perf_counter() - start_wall
    virtual_ns = clock.now_ns - start_virtual

    memcg_kwargs = {}
    if memcg_group is not None:
        mstats = memcg_group.memcg_stats
        memcg_kwargs = {
            "memcg_max_mb": memcg_max_mb,
            "memcg_high_mb": memcg_high_mb,
            "memcg_reclaimed_kb": mstats.bytes_reclaimed / 1024,
            "memcg_reclaim_flushed_kb": mstats.pages_flushed * 4096 / 1024,
            "memcg_stall_ms": mstats.throttle_stall_ns / 1e6,
            "memcg_reclaim_cost_ms": mstats.reclaim_cost_ns / 1e6,
        }
    stats = engine.stats
    reclaim = env.machine.kernel.vm.reclaim_stats
    return WritebackRunResult(
        scenario=scenario,
        tunables=dict(settings or {}),
        bytes_written=total,
        virtual_ms=virtual_ns / 1e6,
        wall_seconds=wall,
        flushes=stats.flushes,
        mean_flush_kb=stats.mean_flush_bytes / 1024,
        flushes_by_reason=dict(stats.flushes_by_reason),
        flushed_kb=stats.flushed_bytes / 1024,
        mem_total_mb=mem_total_mb,
        bdi_write_mb_s=bdi_write_mb_s,
        bdi_busy_ms=engine.bdi.stats.busy_ns / 1e6 if engine.bdi else 0.0,
        reclaim_mem_mb=reclaim_mem_mb,
        reclaimed_kb=reclaim.bytes_reclaimed / 1024,
        reclaim_flushed_kb=reclaim.pages_flushed * 4096 / 1024,
        **memcg_kwargs,
    )


def run_read_workload(scenario: str, size_mb: int = 16, record_kb: int = 64,
                      page_cache_mb: int = 512,
                      bdi_read_mb_s: int = 0) -> WritebackRunResult:
    """Cold sequential read of ``size_mb`` MiB through a CntrFS mount.

    The file is produced through the mount first, the backing store settled
    and the FUSE-side caches dropped (the paper's cold-FUSE methodology);
    only the read phase is measured.  ``bdi_read_mb_s`` caps the modelled
    read bandwidth of the mount's backing-device info (0 = unshaped).
    """
    env = BenchEnvironment(page_cache_mb=page_cache_mb)
    sc, base = env.cntr_access()
    sc.makedirs(f"{base}/rd")
    total = size_mb << 20
    record = record_kb << 10
    chunk = b"r" * record
    path = f"{base}/rd/cold.dat"
    fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
    try:
        for _ in range(total // record):
            sc.write(fd, chunk)
    finally:
        sc.close(fd)
    env.backing.sync()
    env.drop_fuse_caches()
    if bdi_read_mb_s:
        env.client.bdi.read_bandwidth_bytes_s = bdi_read_mb_s << 20

    clock = env.machine.clock
    start_virtual = clock.now_ns
    start_wall = time.perf_counter()
    fd = sc.open(path, OpenFlags.O_RDONLY)
    read_bytes = 0
    try:
        offset = 0
        while offset < total:
            read_bytes += len(sc.pread(fd, record, offset))
            offset += record
    finally:
        sc.close(fd)
    wall = time.perf_counter() - start_wall
    virtual_ns = clock.now_ns - start_virtual

    bdi = env.client.bdi
    return WritebackRunResult(
        scenario=scenario,
        bytes_written=0,
        virtual_ms=virtual_ns / 1e6,
        wall_seconds=wall,
        bdi_read_mb_s=bdi_read_mb_s,
        read_kb=read_bytes / 1024,
        bdi_read_busy_ms=bdi.stats.read_busy_ns / 1e6,
    )


def sweep(size_mb: int = 16) -> dict[str, list[WritebackRunResult]]:
    """The full tunables sweep recorded in ``BENCH_writeback.json``."""
    scenarios: dict[str, list[WritebackRunResult]] = {}

    # Baseline: per-filesystem defaults (the seed-equivalent flush points).
    scenarios["defaults"] = [run_dirty_workload("defaults", size_mb=size_mb)]

    # Hard dirty limit: background flusher disabled, writers block at
    # vm.dirty_bytes.  Lower limit => more, smaller, costlier flushes.
    scenarios["dirty_bytes"] = [
        run_dirty_workload("dirty_bytes",
                           {"dirty_background_bytes": 0, "dirty_bytes": limit},
                           size_mb=size_mb)
        for limit in (256 << 10, 1 << 20, 4 << 20, 16 << 20)
    ]

    # Background threshold: raising it batches more per flush.
    scenarios["dirty_background_bytes"] = [
        run_dirty_workload("dirty_background_bytes",
                           {"dirty_background_bytes": threshold},
                           size_mb=size_mb)
        for threshold in (64 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20)
    ]

    # Age-based expiry: a log writer with ~1ms of think time per 64 KiB
    # record; dirty data older than the expiry is flushed by the periodic
    # flusher wakeup.  Shorter expiry => more flushes.
    scenarios["dirty_expire_centisecs"] = [
        run_dirty_workload("dirty_expire_centisecs",
                           {"dirty_background_bytes": 0, "dirty_bytes": 0,
                            "dirty_expire_centisecs": expire},
                           size_mb=size_mb, think_ns=1_000_000)
        for expire in (2, 8, 32)
    ]

    # fsync storm: the database commit shape.  The background flusher is
    # disabled so the application's fsync cadence alone drives the flushes.
    scenarios["fsync_storm"] = [
        run_dirty_workload("fsync_storm", {"dirty_background_bytes": 0},
                           size_mb=size_mb, fsync_every=every)
        for every in (8, 32, 128)
    ]

    # Ratio-driven hard limit: vm.dirty_ratio resolves against the modelled
    # memory (shrunk to 64 MiB so single-digit percentages bite).  A lower
    # ratio is a lower byte threshold, so the sweep mirrors dirty_bytes:
    # more, smaller flushes and more virtual time.
    scenarios["dirty_ratio"] = [
        run_dirty_workload("dirty_ratio",
                           {"dirty_background_bytes": 0, "dirty_ratio": ratio},
                           size_mb=size_mb, mem_total_mb=64)
        for ratio in (2, 8, 24)
    ]

    # BDI bandwidth shaping: same flush cadence (1 MiB hard limit) under a
    # falling modelled write bandwidth of the CntrFS backing-device info.
    # Bytes flushed are conserved; only the bandwidth term grows.
    scenarios["bdi_write_bandwidth"] = [
        run_dirty_workload("bdi_write_bandwidth",
                           {"dirty_background_bytes": 0, "dirty_bytes": 1 << 20},
                           size_mb=size_mb, bdi_write_mb_s=bandwidth)
        for bandwidth in (0, 800, 200, 50)
    ]

    # Memory pressure: the same dirty workload (background flusher disabled
    # so the dirty data waits for pressure) under a shrinking modelled
    # memory with reclaim enabled.  Smaller memory ⇒ more pages reclaimed,
    # more reclaim-reason flushes, more virtual time.  The 0 row is the
    # reclaim-off baseline after the same cache drop.
    scenarios["mem_pressure"] = [
        run_dirty_workload("mem_pressure", {"dirty_background_bytes": 0},
                           size_mb=size_mb, reclaim_mem_mb=mem)
        for mem in (0, 12, 8, 4)
    ]

    # Read-side BDI shaping: a cold sequential read under a falling modelled
    # read bandwidth.  Bytes fetched are conserved; only the bandwidth term
    # grows, and it equals the BDI read-busy time exactly.
    scenarios["read_bdi"] = [
        run_read_workload("read_bdi", size_mb=size_mb,
                          bdi_read_mb_s=bandwidth)
        for bandwidth in (0, 800, 200, 50)
    ]

    # Cgroup memory budgets: a commit-per-record writer attached to
    # /bench/memcg under a shrinking memory.max (memory.high = max/2),
    # background flushers disabled.  The fsync cadence keeps the *client's*
    # pages clean, so its reclaim victims drop for free, while the CntrFS
    # server defers its own fsyncs (delay_sync) — the backing store's dirty
    # pages are flushed by nothing but per-cgroup reclaim, a cost the
    # unlimited base row never pays.  That separation makes the virtual-time
    # delta against the base row decompose into
    # memcg_stall_ms + memcg_reclaim_cost_ms *exactly*, to the nanosecond.
    # A smaller budget ⇒ more reclaimed bytes, more flush-before-drop and
    # more writer stall.  The 0 row is attached but unlimited.
    scenarios["memcg"] = [
        run_dirty_workload("memcg", {"dirty_background_bytes": 0},
                           size_mb=size_mb, record_kb=128, fsync_every=1,
                           memcg_max_mb=mem_max,
                           memcg_high_mb=mem_max // 2)
        for mem_max in (0, 8, 4, 2)
    ]
    return scenarios


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size-mb", type=int, default=16)
    parser.add_argument("--out", default="BENCH_writeback.json")
    args = parser.parse_args(argv)

    scenarios = sweep(size_mb=args.size_mb)
    payload = {
        "workload": f"{args.size_mb}MiB sequential dirty writes through "
                    "FuseClientFs, tunables applied via /proc/sys/vm",
        "scenarios": {name: [r.to_dict() for r in runs]
                      for name, runs in scenarios.items()},
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, runs in scenarios.items():
        for r in runs:
            knobs = ",".join(f"{k}={v}" for k, v in r.tunables.items()) or "defaults"
            print(f"{name:<26} {knobs:<60} flushes={r.flushes:<5} "
                  f"mean={r.mean_flush_kb:8.1f}KiB virtual={r.virtual_ms:10.3f}ms")
    print(f"-> {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
