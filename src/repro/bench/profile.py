"""Profile harness: wall-clock phases + cProfile hot-function report.

The simulator's *virtual* time is pinned by the BENCH_*.json files; this
harness watches the other axis — how much real CPU the interpreter burns to
produce those pinned numbers.  It runs the repository's own verification
surface as timed phases::

    tier1            PYTHONPATH=src python -m pytest -x -q
    xfstests-native  PYTHONPATH=src python -m repro.xfstests --env native
    xfstests-cntrfs  PYTHONPATH=src python -m repro.xfstests --env cntrfs
                       --skip-paper-failures

and (in full mode) re-runs the non-benchmark test suite plus both xfstests
conformance sweeps under :mod:`cProfile`, aggregating the top-N hottest
functions of the simulator itself into a committed report (``PROFILE.md``).
Raw-speed regressions then show up as a diff in the report instead of as a
slowly rotting CI budget.

Usage::

    PYTHONPATH=src python -m repro.bench.profile                # full report
    PYTHONPATH=src python -m repro.bench.profile --smoke        # CI gate
    PYTHONPATH=src python -m repro.bench.profile \
        --baseline PROFILE.baseline.json                        # speedup table

``--smoke`` skips the profiled pass and only checks that the tier-1 suite
fits a generous wall-clock budget (``--budget-seconds``), writing the phase
report for upload as a CI artifact.  Exit codes: 0 ok, 1 a phase failed,
2 budget exceeded.

Phases run as subprocesses, so the harness measures any checkout it is
pointed at (``--root``) — that is how the committed baseline for the seed
tree was captured.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Default wall-clock ceiling for the tier-1 phase in ``--smoke`` mode.
#: Generous on purpose: the suite runs in well under half of this on a cold
#: CI runner, so only a genuine raw-speed regression (or a hung test) trips.
DEFAULT_BUDGET_SECONDS = 240.0

#: Functions reported per table in the hot-function section.
DEFAULT_TOP_N = 25


@dataclass
class PhaseResult:
    """Wall-clock outcome of one subprocess phase."""

    name: str
    argv: list[str]
    seconds: float
    returncode: int
    tail: str = ""

    @property
    def ok(self) -> bool:
        return self.returncode == 0


@dataclass
class HotFunction:
    """One row of the aggregated cProfile report."""

    where: str
    ncalls: int
    tottime: float
    cumtime: float

    def to_json(self) -> dict:
        return {"where": self.where, "ncalls": self.ncalls,
                "tottime": round(self.tottime, 4),
                "cumtime": round(self.cumtime, 4)}


@dataclass
class Report:
    """Everything one harness invocation measured."""

    phases: list[PhaseResult] = field(default_factory=list)
    hot_tottime: list[HotFunction] = field(default_factory=list)
    hot_cumtime: list[HotFunction] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def phase(self, name: str) -> PhaseResult | None:
        for p in self.phases:
            if p.name == name:
                return p
        return None

    def to_json(self) -> dict:
        return {
            "total_seconds": round(self.total_seconds, 2),
            "phases": [{"name": p.name, "seconds": round(p.seconds, 2),
                        "returncode": p.returncode} for p in self.phases],
            "hot_tottime": [h.to_json() for h in self.hot_tottime],
            "hot_cumtime": [h.to_json() for h in self.hot_cumtime],
        }


# ---------------------------------------------------------------------------
# Phase execution
# ---------------------------------------------------------------------------
def _phase_env(root: Path) -> dict[str, str]:
    import os

    env = dict(os.environ)
    src = str(root / "src")
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{extra}" if extra else src
    return env


def run_phase(name: str, argv: list[str], root: Path) -> PhaseResult:
    """Run one phase as a subprocess, returning its wall time and status."""
    t0 = time.perf_counter()
    proc = subprocess.run(argv, cwd=root, env=_phase_env(root),
                          capture_output=True, text=True)
    seconds = time.perf_counter() - t0
    tail = "\n".join((proc.stdout + proc.stderr).strip().splitlines()[-4:])
    return PhaseResult(name=name, argv=argv, seconds=seconds,
                       returncode=proc.returncode, tail=tail)


def standard_phases(root: Path) -> list[tuple[str, list[str]]]:
    """The measured surface: tier-1 suite plus both conformance sweeps."""
    py = sys.executable
    return [
        ("tier1", [py, "-m", "pytest", "-x", "-q", "-p", "no:cacheprovider"]),
        ("xfstests-native", [py, "-m", "repro.xfstests", "--env", "native"]),
        ("xfstests-cntrfs", [py, "-m", "repro.xfstests", "--env", "cntrfs",
                             "--skip-paper-failures"]),
    ]


# ---------------------------------------------------------------------------
# Profiled pass
# ---------------------------------------------------------------------------
def collect_hot_functions(root: Path, top_n: int) -> tuple[list[HotFunction],
                                                           list[HotFunction]]:
    """Profile the non-benchmark tests + xfstests sweeps in-process.

    ``benchmarks/`` is excluded: pytest-benchmark's pedantic runner does not
    tolerate an active ``sys.setprofile`` hook, and the benchmark workloads
    exercise the same simulator code the unit suite already covers.
    """
    import pytest

    from repro.xfstests.__main__ import main as xfstests_main

    profiler = cProfile.Profile()
    profiler.enable()
    rc = pytest.main(["-x", "-q", "-p", "no:cacheprovider",
                      str(root / "tests")])
    xfstests_main(["--env", "native"])
    xfstests_main(["--env", "cntrfs", "--skip-paper-failures"])
    profiler.disable()
    if rc != 0:
        raise RuntimeError(f"profiled test pass failed (pytest exit {rc})")
    return _top_functions(profiler, root, top_n)


def _top_functions(profiler: cProfile.Profile, root: Path,
                   top_n: int) -> tuple[list[HotFunction], list[HotFunction]]:
    stats = pstats.Stats(profiler, stream=io.StringIO())
    repo = str(root)

    def rows(sort_key: str) -> list[HotFunction]:
        stats.sort_stats(sort_key)
        out: list[HotFunction] = []
        for func in stats.fcn_list:           # (file, line, name), sorted
            filename, line, name = func
            if repo not in filename or "/tests/" in filename:
                continue                       # simulator code only
            cc, nc, tt, ct, _callers = stats.stats[func]
            rel = filename.split(repo, 1)[1].lstrip("/")
            out.append(HotFunction(where=f"{rel}:{line}:{name}",
                                   ncalls=nc, tottime=tt, cumtime=ct))
            if len(out) >= top_n:
                break
        return out

    return rows("tottime"), rows("cumulative")


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def render_markdown(report: Report, baseline: dict | None,
                    smoke: bool) -> str:
    lines = ["# Raw-speed profile report", ""]
    lines.append("Generated by `python -m repro.bench.profile"
                 + (" --smoke" if smoke else "") + "`.  Wall-clock only —")
    lines.append("every pinned `virtual_ms` figure is independent of this "
                 "report by construction.")
    lines.append("")
    lines.append("## Wall-clock phases")
    lines.append("")
    lines.append("| phase | seconds | status |")
    lines.append("|---|---:|---|")
    base_phases = {p["name"]: p["seconds"]
                   for p in (baseline or {}).get("phases", [])}
    for p in report.phases:
        status = "ok" if p.ok else f"FAILED (exit {p.returncode})"
        extra = ""
        if p.name in base_phases and p.seconds > 0:
            extra = f" ({base_phases[p.name] / p.seconds:.2f}x vs baseline)"
        lines.append(f"| {p.name} | {p.seconds:.2f}{extra} | {status} |")
    total = report.total_seconds
    lines.append(f"| **total** | **{total:.2f}** | |")
    if baseline and total > 0:
        base_total = baseline.get("total_seconds", 0.0)
        if base_total:
            lines.append("")
            lines.append(f"Baseline total: {base_total:.2f} s -> "
                         f"**{base_total / total:.2f}x** overall speedup.")
    for title, rows in (("Hot functions by internal time", report.hot_tottime),
                        ("Hot functions by cumulative time", report.hot_cumtime)):
        if not rows:
            continue
        lines.append("")
        lines.append(f"## {title}")
        lines.append("")
        lines.append("| function | ncalls | tottime (s) | cumtime (s) |")
        lines.append("|---|---:|---:|---:|")
        for h in rows:
            lines.append(f"| `{h.where}` | {h.ncalls} | {h.tottime:.3f} "
                         f"| {h.cumtime:.3f} |")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench.profile",
                                     description=__doc__)
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository checkout to measure (default: cwd)")
    parser.add_argument("--smoke", action="store_true",
                        help="phases + budget gate only; skip the profiled pass")
    parser.add_argument("--budget-seconds", type=float,
                        default=DEFAULT_BUDGET_SECONDS,
                        help="tier-1 wall-clock ceiling enforced in --smoke")
    parser.add_argument("--top", type=int, default=DEFAULT_TOP_N,
                        help="functions per hot-function table")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="prior run's JSON for the speedup comparison")
    parser.add_argument("--out", type=Path, default=None,
                        help="markdown report path (default: PROFILE.md, or "
                             "PROFILE.smoke.md with --smoke)")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="also write the raw measurements as JSON")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    report = Report()
    for name, cmd in standard_phases(root):
        result = run_phase(name, cmd, root)
        status = "ok" if result.ok else f"FAILED ({result.returncode})"
        print(f"[{result.seconds:7.2f}s] {name}: {status}")
        if not result.ok:
            print(result.tail)
        report.phases.append(result)

    if not args.smoke:
        hot_tot, hot_cum = collect_hot_functions(root, args.top)
        report.hot_tottime = hot_tot
        report.hot_cumtime = hot_cum

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())

    out = args.out or (root / ("PROFILE.smoke.md" if args.smoke
                               else "PROFILE.md"))
    out.write_text(render_markdown(report, baseline, args.smoke))
    print(f"report written to {out}")
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(report.to_json(), indent=2) + "\n")

    if any(not p.ok for p in report.phases):
        return 1
    tier1 = report.phase("tier1")
    if args.smoke and tier1 is not None and tier1.seconds > args.budget_seconds:
        print(f"FAIL: tier-1 took {tier1.seconds:.1f}s "
              f"> budget {args.budget_seconds:.0f}s")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
