"""The Phoronix disk-suite workloads used in the paper's Figure 2.

Every workload is an operation-mix generator: it issues the same *kinds* and
*shapes* of filesystem operations as the real benchmark (record sizes, file
counts, sync frequency, directory structure), scaled down so the whole suite
runs in seconds of real time.  The measured quantity is virtual time, so the
scale factor cancels out of the native-vs-CntrFS ratio the paper reports.

``paper_overhead`` records the relative overhead from Figure 2 (values > 1
mean CntrFS is slower than native ext4, < 1 mean it is faster).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.constants import OpenFlags
from repro.kernel.syscalls import Syscalls
from repro.sim.rng import DeterministicRandom

CREAT_WR = OpenFlags.O_CREAT | OpenFlags.O_WRONLY
CREAT_RW = OpenFlags.O_CREAT | OpenFlags.O_RDWR


@dataclass
class Workload:
    """Base class for one benchmark workload."""

    #: Short name used in reports (matches Figure 2 labels).
    name: str = "workload"
    #: Relative overhead reported in the paper's Figure 2.
    paper_overhead: float = 1.0
    #: Whether higher virtual time means worse (all our workloads are
    #: fixed-work, so elapsed virtual time is the metric).
    description: str = ""

    def prepare(self, sc: Syscalls, base: str) -> None:
        """Create any input data sets the measured phase needs."""

    def run(self, sc: Syscalls, base: str) -> None:
        """The measured phase."""
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _write_file(sc: Syscalls, path: str, total: int, record: int,
                    sync_every: int = 0) -> None:
        fd = sc.open(path, CREAT_WR, 0o644)
        try:
            written = 0
            chunk = b"w" * record
            count = 0
            while written < total:
                sc.write(fd, chunk)
                written += record
                count += 1
                if sync_every and count % sync_every == 0:
                    sc.fdatasync(fd)
        finally:
            sc.close(fd)

    @staticmethod
    def _read_file(sc: Syscalls, path: str, record: int) -> int:
        fd = sc.open(path, OpenFlags.O_RDONLY)
        total = 0
        try:
            while True:
                data = sc.read(fd, record)
                if not data:
                    break
                total += len(data)
        finally:
            sc.close(fd)
        return total


class AioStress(Workload):
    """AIO-Stress: a stream of asynchronous write requests.

    CntrFS processes the requests synchronously (no O_DIRECT, hence no true
    async path), so every request pays the FUSE round trip (paper: 2.6x).
    """

    def __init__(self) -> None:
        super().__init__(name="AIO-Stress", paper_overhead=2.6,
                         description="2GB of async writes, scaled to 16MB")

    def run(self, sc: Syscalls, base: str) -> None:
        fd = sc.open(f"{base}/aio-stress.dat", CREAT_WR, 0o644)
        rng = DeterministicRandom("aio-stress")
        try:
            record = 64 * 1024
            blocks = 256                       # 16 MiB
            for _ in range(blocks):
                offset = rng.randrange(0, blocks) * record
                sc.pwrite(fd, b"a" * record, offset)
            sc.fdatasync(fd)
        finally:
            sc.close(fd)


class ApacheBench(Workload):
    """Apache: static file serving; the bottleneck is the tiny access-log write."""

    def __init__(self) -> None:
        super().__init__(name="Apachebench", paper_overhead=1.5,
                         description="HTTP requests for 3KB files with access logging")
        self.requests = 800
        self.file_count = 32

    def prepare(self, sc: Syscalls, base: str) -> None:
        sc.makedirs(f"{base}/htdocs")
        for i in range(self.file_count):
            self._write_file(sc, f"{base}/htdocs/page{i:02d}.html", 3072, 3072)

    def run(self, sc: Syscalls, base: str) -> None:
        rng = DeterministicRandom("apachebench")
        log_fd = sc.open(f"{base}/access.log", CREAT_WR | OpenFlags.O_APPEND, 0o644)
        try:
            for _ in range(self.requests):
                page = rng.randrange(0, self.file_count)
                self._read_file(sc, f"{base}/htdocs/page{page:02d}.html", 4096)
                sc.write(log_fd, b'10.0.0.7 - - "GET /page%02d.html HTTP/1.1" 200 3072\n'
                         % page)
        finally:
            sc.close(log_fd)


class CompilebenchCompile(Workload):
    """Compilebench, compile stage: read sources, write objects."""

    def __init__(self) -> None:
        super().__init__(name="Compileb.: Comp.", paper_overhead=2.3,
                         description="compile a kernel module: read .c, write .o")
        self.sources = 120

    def prepare(self, sc: Syscalls, base: str) -> None:
        sc.makedirs(f"{base}/module/src")
        for i in range(self.sources):
            self._write_file(sc, f"{base}/module/src/file{i:03d}.c", 9 * 1024, 4096)

    def run(self, sc: Syscalls, base: str) -> None:
        sc.makedirs(f"{base}/module/obj")
        for i in range(self.sources):
            self._read_file(sc, f"{base}/module/src/file{i:03d}.c", 4096)
            self._write_file(sc, f"{base}/module/obj/file{i:03d}.o", 14 * 1024, 14 * 1024)


class CompilebenchCreate(Workload):
    """Compilebench, initial create stage: simulated tarball unpack into new trees."""

    def __init__(self) -> None:
        super().__init__(name="Compileb.: Create", paper_overhead=7.3,
                         description="unpack-like creation of many small files")
        self.dirs = 24
        self.files_per_dir = 18

    def run(self, sc: Syscalls, base: str) -> None:
        for d in range(self.dirs):
            sc.makedirs(f"{base}/tree/dir{d:03d}")
            for f in range(self.files_per_dir):
                self._write_file(sc, f"{base}/tree/dir{d:03d}/src{f:03d}.c",
                                 6 * 1024, 6 * 1024)


class CompilebenchRead(Workload):
    """Compilebench, read-tree stage: recursively read a freshly created tree.

    Every file is new, so each one costs a LOOKUP (open+stat on the server)
    before its small read — the paper's worst case (13.3x).
    """

    def __init__(self) -> None:
        super().__init__(name="Compileb.: Read", paper_overhead=13.3,
                         description="recursive read of a fresh source tree")
        self.dirs = 26
        self.files_per_dir = 20

    def prepare(self, sc: Syscalls, base: str) -> None:
        for d in range(self.dirs):
            sc.makedirs(f"{base}/kernel/dir{d:03d}")
            for f in range(self.files_per_dir):
                self._write_file(sc, f"{base}/kernel/dir{d:03d}/src{f:03d}.c",
                                 5 * 1024, 5 * 1024)

    def run(self, sc: Syscalls, base: str) -> None:
        for d in range(self.dirs):
            directory = f"{base}/kernel/dir{d:03d}"
            for name in sc.listdir(directory):
                path = f"{directory}/{name}"
                sc.stat(path)
                self._read_file(sc, path, 4096)


class Dbench(Workload):
    """Dbench: file-server operation mix with N concurrent clients."""

    def __init__(self, clients: int, paper_overhead: float) -> None:
        super().__init__(name=f"Dbench: {clients} Clients", paper_overhead=paper_overhead,
                         description="file server mix: reads of a warm tree")
        self.clients = clients
        self.operations = 60

    def prepare(self, sc: Syscalls, base: str) -> None:
        sc.makedirs(f"{base}/share")
        for i in range(40):
            self._write_file(sc, f"{base}/share/file{i:03d}", 32 * 1024, 8192)

    def run(self, sc: Syscalls, base: str) -> None:
        rng = DeterministicRandom(f"dbench-{self.clients}")
        for _client in range(self.clients):
            for _op in range(self.operations):
                idx = rng.randrange(0, 40)
                path = f"{base}/share/file{idx:03d}"
                roll = rng.random()
                if roll < 0.70:
                    self._read_file(sc, path, 8192)
                elif roll < 0.85:
                    sc.stat(path)
                else:
                    sc.listdir(f"{base}/share")


class FsMark(Workload):
    """FS-Mark: sequentially create 1MB files with 16KB writes (disk bound)."""

    def __init__(self) -> None:
        super().__init__(name="FS-Mark", paper_overhead=1.0,
                         description="create 1MB files with 16KB writes and fsync")
        self.files = 24

    def run(self, sc: Syscalls, base: str) -> None:
        sc.makedirs(f"{base}/fsmark")
        for i in range(self.files):
            path = f"{base}/fsmark/f{i:04d}"
            self._write_file(sc, path, 1024 * 1024, 16 * 1024)
            fd = sc.open(path, OpenFlags.O_WRONLY)
            try:
                sc.fsync(fd)
            finally:
                sc.close(fd)


class Fio(Workload):
    """FIO fileserver profile: 80% random reads / 20% random writes, ~140KB blocks.

    The kernel writeback cache turns the small random writes into few large
    flushes and the delayed sync defers the barriers, which is why the paper
    measures CntrFS *faster* than native here (0.2x).
    """

    def __init__(self) -> None:
        super().__init__(name="FIO", paper_overhead=0.2,
                         description="random 140KB reads/writes over a 64MB file")
        self.file_size = 64 * 1024 * 1024
        self.block = 140 * 1024
        self.iterations = 300

    def prepare(self, sc: Syscalls, base: str) -> None:
        self._write_file(sc, f"{base}/fio.dat", self.file_size, 1024 * 1024)

    def run(self, sc: Syscalls, base: str) -> None:
        rng = DeterministicRandom("fio")
        fd = sc.open(f"{base}/fio.dat", CREAT_RW)
        try:
            max_block = self.file_size // self.block
            for i in range(self.iterations):
                offset = rng.randrange(0, max_block) * self.block
                if rng.random() < 0.8:
                    sc.pread(fd, self.block, offset)
                else:
                    sc.pwrite(fd, b"f" * self.block, offset)
                    if i % 25 == 0:
                        sc.fdatasync(fd)
        finally:
            sc.close(fd)


class Gzip(Workload):
    """Gzip: read a large zero file, write the (small) compressed output."""

    def __init__(self) -> None:
        super().__init__(name="Gzip", paper_overhead=1.0,
                         description="compress a 32MB file of zeros")
        self.size = 32 * 1024 * 1024

    def prepare(self, sc: Syscalls, base: str) -> None:
        self._write_file(sc, f"{base}/zeros.bin", self.size, 1024 * 1024)

    def run(self, sc: Syscalls, base: str) -> None:
        fd_in = sc.open(f"{base}/zeros.bin", OpenFlags.O_RDONLY)
        fd_out = sc.open(f"{base}/zeros.bin.gz", CREAT_WR, 0o644)
        cpu_ns_per_byte = 20.0        # ~50 MB/s compression speed
        try:
            while True:
                data = sc.read(fd_in, 256 * 1024)
                if not data:
                    break
                # gzip's compression is CPU bound and identical in both
                # configurations; charging it makes the workload compute
                # bound, which is why the paper measures no overhead here.
                sc.kernel.clock.advance(int(cpu_ns_per_byte * len(data)))
                sc.write(fd_out, b"g" * max(1, len(data) // 1000))
        finally:
            sc.close(fd_in)
            sc.close(fd_out)


class IoZoneWrite(Workload):
    """IOzone sequential write, 4KB records (paper: 1.2x from xattr lookups)."""

    def __init__(self, size_mb: int = 32) -> None:
        super().__init__(name="IOzone: Write", paper_overhead=1.2,
                         description=f"sequential write of {size_mb}MB in 4KB records")
        self.size = size_mb * 1024 * 1024

    def run(self, sc: Syscalls, base: str) -> None:
        self._write_file(sc, f"{base}/iozone.tmp", self.size, 4096)
        fd = sc.open(f"{base}/iozone.tmp", OpenFlags.O_WRONLY)
        try:
            sc.fsync(fd)
        finally:
            sc.close(fd)


class IoZoneRead(Workload):
    """IOzone sequential read, 4KB records, warm page cache (paper: 2.1x)."""

    def __init__(self, size_mb: int = 32) -> None:
        super().__init__(name="IOzone: Read", paper_overhead=2.1,
                         description=f"sequential read of {size_mb}MB in 4KB records")
        self.size = size_mb * 1024 * 1024

    def prepare(self, sc: Syscalls, base: str) -> None:
        self._write_file(sc, f"{base}/iozone-read.tmp", self.size, 1024 * 1024)

    def run(self, sc: Syscalls, base: str) -> None:
        self._read_file(sc, f"{base}/iozone-read.tmp", 4096)


class PostMark(Workload):
    """PostMark: mail-server mix of create/append/read/delete on small files.

    Files are created and deleted before they are ever synced, so the work is
    dominated by inode lookups — the paper's second-worst case (7.1x).
    """

    def __init__(self) -> None:
        super().__init__(name="PostMark", paper_overhead=7.1,
                         description="small-file create/append/read/delete churn")
        self.transactions = 500
        self.pool = 120

    def run(self, sc: Syscalls, base: str) -> None:
        rng = DeterministicRandom("postmark")
        sc.makedirs(f"{base}/mail")
        live: list[str] = []
        for i in range(self.pool):
            path = f"{base}/mail/msg{i:05d}"
            self._write_file(sc, path, 2048, 2048)
            live.append(path)
        serial = self.pool
        for _ in range(self.transactions):
            roll = rng.random()
            if roll < 0.3 or not live:
                path = f"{base}/mail/msg{serial:05d}"
                serial += 1
                self._write_file(sc, path, 2048, 2048)
                live.append(path)
            elif roll < 0.55:
                victim = live.pop(rng.randrange(0, len(live)))
                sc.unlink(victim)
            elif roll < 0.8:
                target = live[rng.randrange(0, len(live))]
                fd = sc.open(target, OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
                try:
                    sc.write(fd, b"appended line\n" * 16)
                finally:
                    sc.close(fd)
            else:
                target = live[rng.randrange(0, len(live))]
                self._read_file(sc, target, 4096)


class PgBench(Workload):
    """PGBench: database page writes with periodic WAL flushes (paper: 0.4x)."""

    def __init__(self) -> None:
        super().__init__(name="Pgbench", paper_overhead=0.4,
                         description="8KB page writes + WAL appends, periodic flush")
        self.transactions = 400

    def prepare(self, sc: Syscalls, base: str) -> None:
        sc.makedirs(f"{base}/pgdata")
        self._write_file(sc, f"{base}/pgdata/table.dat", 16 * 1024 * 1024, 1024 * 1024)

    def run(self, sc: Syscalls, base: str) -> None:
        rng = DeterministicRandom("pgbench")
        table_fd = sc.open(f"{base}/pgdata/table.dat", CREAT_RW)
        wal_fd = sc.open(f"{base}/pgdata/wal.log", CREAT_WR | OpenFlags.O_APPEND, 0o644)
        try:
            pages = 16 * 1024 * 1024 // 8192
            for i in range(self.transactions):
                page = rng.randrange(0, pages)
                sc.pread(table_fd, 8192, page * 8192)
                sc.pwrite(table_fd, b"p" * 8192, page * 8192)
                sc.write(wal_fd, b"x" * 512)
                if i % 50 == 49:
                    sc.fdatasync(wal_fd)
                    sc.fdatasync(table_fd)
        finally:
            sc.close(table_fd)
            sc.close(wal_fd)


class Sqlite(Workload):
    """SQLite: 1000 row inserts, each followed by a synchronous journal commit."""

    def __init__(self) -> None:
        super().__init__(name="SQlite", paper_overhead=1.9,
                         description="row inserts with a sync after every insert")
        self.rows = 300

    def run(self, sc: Syscalls, base: str) -> None:
        db_fd = sc.open(f"{base}/test.db", CREAT_RW, 0o644)
        try:
            for i in range(self.rows):
                journal_fd = sc.open(f"{base}/test.db-journal", CREAT_WR, 0o644)
                try:
                    sc.write(journal_fd, b"j" * 512)
                    sc.fsync(journal_fd)
                finally:
                    sc.close(journal_fd)
                sc.pwrite(db_fd, b"r" * 1024, i * 1024)
                sc.fsync(db_fd)
                sc.unlink(f"{base}/test.db-journal")
        finally:
            sc.close(db_fd)


class ThreadedIoRead(Workload):
    """Threaded I/O tester, read side: concurrent readers over a 64MB file."""

    def __init__(self) -> None:
        super().__init__(name="Threaded I/O: Read", paper_overhead=1.1,
                         description="4 reader threads over a shared 16MB file")
        self.threads = 4
        self.size = 16 * 1024 * 1024

    def prepare(self, sc: Syscalls, base: str) -> None:
        self._write_file(sc, f"{base}/tio.dat", self.size, 1024 * 1024)

    def run(self, sc: Syscalls, base: str) -> None:
        for _thread in range(self.threads):
            self._read_file(sc, f"{base}/tio.dat", 64 * 1024)


class ThreadedIoWrite(Workload):
    """Threaded I/O tester, write side: concurrent writers (paper: 0.3x)."""

    def __init__(self) -> None:
        super().__init__(name="Threaded I/O: Write", paper_overhead=0.3,
                         description="4 writer threads appending to private files")
        self.threads = 4
        self.per_thread = 4 * 1024 * 1024

    def run(self, sc: Syscalls, base: str) -> None:
        sc.makedirs(f"{base}/tio-write")
        for thread in range(self.threads):
            path = f"{base}/tio-write/writer{thread}"
            self._write_file(sc, path, self.per_thread, 64 * 1024, sync_every=16)


class UnpackTarball(Workload):
    """Linux tarball unpack: stream one big file into many small new files."""

    def __init__(self) -> None:
        super().__init__(name="Unpack tarball", paper_overhead=1.2,
                         description="read one tarball, create many small files")
        self.members = 350

    def prepare(self, sc: Syscalls, base: str) -> None:
        self._write_file(sc, f"{base}/linux.tar", self.members * 8 * 1024, 1024 * 1024)

    def run(self, sc: Syscalls, base: str) -> None:
        tar_fd = sc.open(f"{base}/linux.tar", OpenFlags.O_RDONLY)
        sc.makedirs(f"{base}/linux-src")
        try:
            for i in range(self.members):
                sc.read(tar_fd, 8 * 1024)
                if i % 40 == 0:
                    sc.makedirs(f"{base}/linux-src/dir{i // 40:03d}")
                self._write_file(sc, f"{base}/linux-src/dir{i // 40:03d}/f{i:05d}.c",
                                 8 * 1024, 8 * 1024)
        finally:
            sc.close(tar_fd)


def build_all_workloads() -> list[Workload]:
    """All twenty Figure 2 workloads in the paper's display order."""
    return [
        AioStress(),
        ApacheBench(),
        CompilebenchCompile(),
        CompilebenchCreate(),
        CompilebenchRead(),
        Dbench(1, paper_overhead=1.4),
        Dbench(12, paper_overhead=0.9),
        Dbench(128, paper_overhead=1.0),
        Dbench(48, paper_overhead=1.0),
        FsMark(),
        Fio(),
        Gzip(),
        IoZoneRead(),
        IoZoneWrite(),
        PostMark(),
        PgBench(),
        Sqlite(),
        ThreadedIoRead(),
        ThreadedIoWrite(),
        UnpackTarball(),
    ]


#: Singleton list used by the harness and the benchmarks.
ALL_WORKLOADS: list[Workload] = build_all_workloads()


def workload_by_name(name: str) -> Workload:
    """Find a workload by its Figure 2 label."""
    for workload in ALL_WORKLOADS:
        if workload.name.lower() == name.lower():
            return workload
    raise KeyError(f"unknown workload: {name}")
