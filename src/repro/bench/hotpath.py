"""Hot-path regression harness: wall-clock *and* virtual-time measurements.

Unlike the Figure 2-4 generators (which only care about simulated time), this
harness measures how fast the simulator itself runs — the wall-clock cost of
pushing GB-scale sequential workloads through ``FuseClientFs``.  It exists to
prove that the extent-based page cache, the batched FUSE dispatch and the VFS
dentry cache keep the hot paths O(extents touched) instead of O(pages
touched): the same script run against the per-page seed implementation and
against the extent engine yields the speedup recorded in
``BENCH_hotpath.json`` (see PERFORMANCE.md for how to read that file).

Run it directly::

    PYTHONPATH=src python -m repro.bench.hotpath --size-mb 1024 \
        --label optimized --out BENCH_hotpath.json

Results for multiple labels accumulate in the output JSON; when both a
``seed`` and an ``optimized`` entry are present, a ``speedup`` section is
computed automatically.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass

from repro.bench.harness import BenchEnvironment
from repro.fs.constants import OpenFlags


@dataclass
class HotpathResult:
    """One measured phase of the hot-path workload."""

    workload: str
    bytes_processed: int
    record_bytes: int
    wall_seconds: float
    virtual_ms: float
    syscalls: int

    @property
    def wall_mb_s(self) -> float:
        """Real-time throughput of the *simulator* (not the simulated disk)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.bytes_processed / 1e6 / self.wall_seconds

    def to_dict(self) -> dict:
        data = asdict(self)
        data["wall_mb_s"] = round(self.wall_mb_s, 2)
        data["wall_seconds"] = round(self.wall_seconds, 3)
        data["virtual_ms"] = round(self.virtual_ms, 3)
        return data


def _measure(env: BenchEnvironment, name: str, nbytes: int, record: int,
             func) -> HotpathResult:
    start_virtual = env.machine.clock.now_ns
    start_wall = time.perf_counter()
    syscalls = func()
    wall = time.perf_counter() - start_wall
    virtual = env.machine.clock.now_ns - start_virtual
    return HotpathResult(workload=name, bytes_processed=nbytes,
                         record_bytes=record, wall_seconds=wall,
                         virtual_ms=virtual / 1e6, syscalls=syscalls)


def run_hotpath(size_mb: int = 1024, record_kb: int = 64,
                page_cache_mb: int = 4096) -> list[HotpathResult]:
    """The acceptance workload: sequential write + read of ``size_mb`` MiB
    through a CntrFS mount, in ``record_kb`` KiB records.

    Returns one result per phase: buffered write (+fsync), cold sequential
    read (FUSE-side caches dropped first) and warm sequential read (page
    cache resident).
    """
    env = BenchEnvironment(page_cache_mb=page_cache_mb)
    sc, base = env.cntr_access()
    sc.makedirs(f"{base}/hotpath")
    path = f"{base}/hotpath/seq.dat"
    total = size_mb << 20
    record = record_kb << 10
    results = []

    def write_phase() -> int:
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
        calls = 1
        chunk = b"w" * record
        try:
            written = 0
            while written < total:
                sc.write(fd, chunk)
                written += record
                calls += 1
            sc.fsync(fd)
            calls += 1
        finally:
            sc.close(fd)
            calls += 1
        return calls

    def read_phase() -> int:
        fd = sc.open(path, OpenFlags.O_RDONLY)
        calls = 1
        try:
            while True:
                data = sc.read(fd, record)
                calls += 1
                if not data:
                    break
        finally:
            sc.close(fd)
            calls += 1
        return calls

    results.append(_measure(env, "seq_write", total, record, write_phase))
    env.drop_fuse_caches()
    results.append(_measure(env, "seq_read_cold", total, record, read_phase))
    results.append(_measure(env, "seq_read_warm", total, record, read_phase))
    return results


def run_scaled_figures(scale: int = 10) -> list[HotpathResult]:
    """Figure 3/4-shaped workloads at ``scale``x the paper-suite size.

    Uses the IOzone read/write generators (the Figure 3b/3d/4 inputs) at a
    size ``scale`` times the default 32 MB, which is where per-page hot-path
    loops used to dominate the wall clock.
    """
    from repro.bench.phoronix import IoZoneRead, IoZoneWrite

    results = []
    for workload in (IoZoneWrite(size_mb=32 * scale), IoZoneRead(size_mb=32 * scale)):
        env = BenchEnvironment(page_cache_mb=max(2048, 64 * scale))
        native_sc, native_base = env.native_access()
        run_sc, run_base = env.cntr_access()
        native_sc.makedirs(f"{native_base}/scaled")
        workload.prepare(native_sc, f"{native_base}/scaled")
        env.backing.sync()
        env.drop_fuse_caches()
        result = _measure(env, f"figure_scaled:{workload.name}", workload.size,
                          4096,
                          lambda w=workload, sc=run_sc, base=run_base:
                              w.run(sc, f"{base}/scaled") or 0)
        results.append(result)
    return results


def _merge_json(out_path: str, label: str, payload: dict) -> dict:
    data = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            data = json.load(fh)
    data[label] = payload
    if "seed" in data and "optimized" in data:
        speedup = {}
        seed_phases = {r["workload"]: r for r in data["seed"]["phases"]}
        for phase in data["optimized"]["phases"]:
            ref = seed_phases.get(phase["workload"])
            if ref and phase["wall_seconds"] > 0:
                speedup[phase["workload"]] = round(
                    ref["wall_seconds"] / phase["wall_seconds"], 2)
        seed_total = data["seed"]["total_wall_seconds"]
        opt_total = data["optimized"]["total_wall_seconds"]
        speedup["total"] = round(seed_total / opt_total, 2) if opt_total else None
        data["speedup"] = speedup
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size-mb", type=int, default=1024)
    parser.add_argument("--record-kb", type=int, default=64)
    parser.add_argument("--label", default="optimized",
                        help="result key in the output JSON (seed | optimized)")
    parser.add_argument("--out", default="BENCH_hotpath.json")
    parser.add_argument("--scaled-figures", type=int, default=0, metavar="SCALE",
                        help="also run the Figure 3/4 workloads at SCALEx size")
    args = parser.parse_args(argv)

    results = run_hotpath(size_mb=args.size_mb, record_kb=args.record_kb)
    if args.scaled_figures:
        results.extend(run_scaled_figures(args.scaled_figures))
    payload = {
        "workload": f"{args.size_mb}MiB sequential write+read through FuseClientFs",
        "record_kb": args.record_kb,
        "phases": [r.to_dict() for r in results],
        "total_wall_seconds": round(sum(r.wall_seconds for r in results), 3),
    }
    data = _merge_json(args.out, args.label, payload)
    with open(args.out, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for r in results:
        print(f"{r.workload:<28} wall={r.wall_seconds:8.3f}s "
              f"({r.wall_mb_s:9.1f} MB/s of simulator throughput) "
              f"virtual={r.virtual_ms:10.1f}ms syscalls={r.syscalls}")
    print(f"total wall: {payload['total_wall_seconds']}s -> {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
