"""Multi-tenant scale benchmark: containers × server threads × ``cpu.max``.

The paper's scalability story (§4 / Figure 4) is about what happens when many
tenants hammer one CntrFS mount: server worker threads must drain the
``/dev/fuse`` queue concurrently and the CPU controller must keep tenants
inside their bandwidth.  This harness sweeps the three axes independently on
top of the deterministic scheduler (:mod:`repro.sim.sched`):

* **containers** — more tenants writing through the shared mount means more
  total virtual time, while weighted fairness keeps their CPU shares equal;
* **threads** — the bounded background queue (``max_background``) congests
  writeback bursts, and more server worker loops drain the backlog faster,
  shrinking the congestion stall;
* **cpu.max** — a shrinking quota (written through cgroupfs, exactly the
  ``docker run --cpus`` path) leaves per-tenant CPU *usage* unchanged but
  adds throttled wait, stretching completion time.

Every run is seeded: the pick trace digest recorded per row is
byte-reproducible across runs and interpreters (locked by
``tests/test_sched.py``).  Results land in ``BENCH_scale.json``; the
committed rows are append-only history guarded by
``benchmarks/test_bench_scale.py``.

Run it directly::

    PYTHONPATH=src python -m repro.bench.scale --out BENCH_scale.json
    PYTHONPATH=src python -m repro.bench.scale --smoke   # CI matrix smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from dataclasses import asdict, dataclass, field

from repro.bench.harness import BenchEnvironment
from repro.fs.constants import OpenFlags
from repro.fuse.options import FuseMountOptions
from repro.sim.rng import DeterministicRandom

#: Background-queue bound used for every run (the Linux default).
MAX_BACKGROUND = 12
#: Default per-tenant workload: 96 records × 64 KiB = 6 MiB, sized so the
#: fsync flush burst (48 wire requests) overflows ``max_background`` and the
#: capped sweep quotas (2ms/10ms, 1ms/10ms) sit below the ~2.5ms per period
#: each of four tenants uses on the shared virtual CPU.
RECORDS = 96
RECORD_KB = 64
SEED = 1807


@dataclass
class ScaleResult:
    """One cell of the containers × threads × cpu.max matrix."""

    containers: int
    threads: int
    cpu_max: str
    records: int
    record_kb: int
    seed: int
    virtual_ms: float
    wall_seconds: float
    picks: int
    context_switches: int
    preemptions: int
    idle_ms: float
    switch_cost_ms: float
    pick_digest: str              # sha256 of the comma-joined pick trace
    queue_queued: int
    queue_max_depth: int
    queue_congestion_waits: int
    queue_congestion_wait_ms: float
    usage_usec_total: int
    nr_throttled_total: int
    throttled_usec_total: int
    tenants: list = field(default_factory=list)

    def to_dict(self) -> dict:
        data = asdict(self)
        for key in ("virtual_ms", "idle_ms", "switch_cost_ms",
                    "queue_congestion_wait_ms"):
            data[key] = round(data[key], 3)
        data["wall_seconds"] = round(data["wall_seconds"], 3)
        return data


def _cgroupfs_write(sc, path: str, payload: bytes) -> None:
    fd = sc.open(path, OpenFlags.O_WRONLY)
    try:
        sc.write(fd, payload)
    finally:
        sc.close(fd)


def _cpu_stat(sc, cg_dir: str) -> dict[str, int]:
    fd = sc.open(f"{cg_dir}/cpu.stat", OpenFlags.O_RDONLY)
    try:
        text = sc.read(fd, 1 << 14).decode()
    finally:
        sc.close(fd)
    return {k: int(v) for k, v in (line.split() for line in text.splitlines())}


def _tenant_body(sc, base: str, records: int, record_kb: int):
    """One tenant's workload: sequential writes, fsync, sequential read-back.

    A generator so the scheduler can preempt between syscalls; every
    operation charges the shared virtual clock inline.
    """
    payload = b"s" * (record_kb << 10)

    def body():
        fd = sc.open(f"{base}/data", OpenFlags.O_CREAT | OpenFlags.O_WRONLY,
                     0o644)
        yield None
        for _ in range(records):
            sc.write(fd, payload)
            yield None
        sc.fsync(fd)
        yield None
        sc.close(fd)
        fd = sc.open(f"{base}/data", OpenFlags.O_RDONLY)
        yield None
        while sc.read(fd, record_kb << 10):
            yield None
        sc.close(fd)

    return body


def run_scale(containers: int, threads: int, cpu_max: str = "max",
              records: int = RECORDS, record_kb: int = RECORD_KB,
              seed: int = SEED) -> ScaleResult:
    """Run ``containers`` tenants through one CntrFS mount and measure."""
    options = FuseMountOptions.paper_defaults().with_overrides(
        max_background=MAX_BACKGROUND)
    env = BenchEnvironment(options=options, threads=threads,
                           page_cache_mb=512)
    # Let dirty data accumulate so each tenant's fsync flushes one large
    # background burst through the bounded queue.
    for knob, value in (("dirty_background_bytes", 64 << 20),
                        ("dirty_bytes", 128 << 20)):
        _cgroupfs_write(env.host_sc, f"/proc/sys/vm/{knob}",
                        f"{value}\n".encode())
    kernel = env.machine.kernel
    controller = kernel.cpu_controller(rng=DeterministicRandom(seed))
    admin = env.host_sc
    cg_dirs = []
    for i in range(containers):
        cg_dir = f"/sys/fs/cgroup/tenant{i}"
        admin.mkdir(cg_dir)
        if cpu_max != "max":
            _cgroupfs_write(admin, f"{cg_dir}/cpu.max", cpu_max.encode())
        cg_dirs.append(cg_dir)
        worker = env.machine.spawn_host_process([f"/usr/bin/tenant{i}"])
        kernel.cgroups.attach(worker.process.pid, f"/tenant{i}")
        worker.makedirs(f"/cntr/tenant{i}")
        controller.spawn(worker.process,
                         _tenant_body(worker, f"/cntr/tenant{i}",
                                      records, record_kb),
                         name=f"tenant{i}")

    start_virtual = env.machine.clock.now_ns
    start_wall = time.perf_counter()
    stats = controller.run()
    wall = time.perf_counter() - start_wall
    virtual = env.machine.clock.now_ns - start_virtual

    tenants = []
    for i, cg_dir in enumerate(cg_dirs):
        stat = _cpu_stat(admin, cg_dir)
        tenants.append({"tenant": f"tenant{i}", **stat})
    queue = env.client.connection.queue_stats
    return ScaleResult(
        containers=containers, threads=threads, cpu_max=cpu_max,
        records=records, record_kb=record_kb, seed=seed,
        virtual_ms=virtual / 1e6, wall_seconds=wall,
        picks=stats.picks, context_switches=stats.context_switches,
        preemptions=stats.preemptions, idle_ms=stats.idle_ns / 1e6,
        switch_cost_ms=stats.switch_cost_ns / 1e6,
        pick_digest=hashlib.sha256(
            ",".join(stats.pick_trace).encode()).hexdigest(),
        queue_queued=queue.queued_total, queue_max_depth=queue.max_depth,
        queue_congestion_waits=queue.congestion_waits,
        queue_congestion_wait_ms=queue.congestion_wait_ns / 1e6,
        usage_usec_total=sum(t["usage_usec"] for t in tenants),
        nr_throttled_total=sum(t["nr_throttled"] for t in tenants),
        throttled_usec_total=sum(t["throttled_usec"] for t in tenants),
        tenants=tenants)


def sweep(records: int = RECORDS, record_kb: int = RECORD_KB,
          seed: int = SEED) -> dict[str, list[ScaleResult]]:
    """The three independent sweeps recorded in ``BENCH_scale.json``."""
    return {
        # More tenants through one mount: total virtual time grows while
        # equal weights keep per-tenant CPU usage identical.
        "containers": [run_scale(c, 4, records=records, record_kb=record_kb,
                                 seed=seed)
                       for c in (1, 2, 4, 8)],
        # More server worker loops drain the congested background queue
        # faster: the congestion stall falls monotonically.
        "threads": [run_scale(4, t, records=records, record_kb=record_kb,
                              seed=seed)
                    for t in (1, 2, 4, 8)],
        # Shrinking cpu.max: same per-tenant usage, growing throttled wait,
        # growing completion time.  (Four tenants share the one virtual CPU,
        # so each runs ~2.5ms per 10ms period unthrottled; the capped rows
        # sit below that.)
        "cpu_max": [run_scale(4, 4, cpu_max=quota, records=records,
                              record_kb=record_kb, seed=seed)
                    for quota in ("max", "2000 10000", "1000 10000")],
    }


def smoke() -> int:
    """Small containers × threads matrix with built-in sanity checks (CI)."""
    for containers in (1, 2):
        for threads in (1, 4):
            first = run_scale(containers, threads, records=16, seed=SEED)
            again = run_scale(containers, threads, records=16, seed=SEED)
            assert first.pick_digest == again.pick_digest, \
                (containers, threads)
            assert first.virtual_ms == again.virtual_ms, (containers, threads)
            assert first.usage_usec_total > 0, (containers, threads)
            print(f"containers={containers} threads={threads} "
                  f"virtual_ms={first.virtual_ms:.3f} "
                  f"picks={first.picks} digest={first.pick_digest[:12]}")
    # Enough work (≈2.6ms CPU) to park a 1ms/10ms-quota tenant across
    # period boundaries, so real throttled time accrues, not just the count.
    capped = run_scale(2, 4, cpu_max="1000 10000", records=48, seed=SEED)
    assert capped.nr_throttled_total > 0
    assert capped.throttled_usec_total > 0
    print(f"cpu.max=1000/10000 throttled_usec={capped.throttled_usec_total}")
    print("scale smoke: ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the small CI matrix with sanity checks")
    parser.add_argument("--records", type=int, default=RECORDS)
    parser.add_argument("--record-kb", type=int, default=RECORD_KB)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", default="BENCH_scale.json")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()
    results = sweep(records=args.records, record_kb=args.record_kb,
                    seed=args.seed)
    payload = {
        "workload": f"{args.records}x{args.record_kb}KiB sequential writes + "
                    "fsync + read-back per tenant through one CntrFS mount, "
                    f"max_background={MAX_BACKGROUND}, scheduler seed "
                    f"{args.seed}",
        "sweeps": {name: [r.to_dict() for r in runs]
                   for name, runs in results.items()},
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, runs in results.items():
        print(f"{name}: " + ", ".join(
            f"{r.containers}x{r.threads}t[{r.cpu_max}]={r.virtual_ms:.1f}ms"
            for r in runs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
