"""Benchmark harness and Phoronix-style workload generators.

This package regenerates the performance portion of the paper's evaluation:

* :mod:`repro.bench.harness` — builds matched native/CntrFS environments over
  the same ext4-like backing store, runs a workload in both and reports the
  relative overhead (Figure 2), sweeps individual optimizations (Figure 3) and
  thread counts (Figure 4), and drives the Docker-Slim sweep (Figure 5),
* :mod:`repro.bench.phoronix` — the twenty disk workloads of the Phoronix
  suite the paper uses, re-implemented as operation-mix generators against the
  simulated syscall interface.
"""

from repro.bench.harness import (
    BenchEnvironment,
    ComparisonResult,
    figure2_phoronix_overheads,
    figure3_optimization_effects,
    figure4_thread_sweep,
    figure5_docker_slim,
    run_comparison,
)
from repro.bench.phoronix import ALL_WORKLOADS, Workload, workload_by_name

__all__ = [
    "BenchEnvironment",
    "ComparisonResult",
    "run_comparison",
    "figure2_phoronix_overheads",
    "figure3_optimization_effects",
    "figure4_thread_sweep",
    "figure5_docker_slim",
    "ALL_WORKLOADS",
    "Workload",
    "workload_by_name",
]
