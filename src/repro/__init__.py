"""Reproduction of "Cntr: Lightweight OS Containers" (USENIX ATC 2018).

The package is organised as a stack:

* :mod:`repro.sim` — virtual clock and cost model (all performance numbers are
  virtual time),
* :mod:`repro.fs` — simulated Linux VFS (inodes, mounts, page cache, tmpfs,
  ext4-like filesystem),
* :mod:`repro.kernel` — processes, the seven namespace kinds, cgroups,
  capabilities, /proc, IPC objects and the per-process syscall facade,
* :mod:`repro.fuse` — the FUSE protocol, the kernel-side client filesystem
  with the paper's optimizations, and the server base class,
* :mod:`repro.container` — images, registry and the Docker/LXC/rkt/nspawn
  engines,
* :mod:`repro.core` — Cntr itself: context gathering, CntrFS, the nested
  namespace attach workflow, PTY forwarding and the socket proxy,
* :mod:`repro.slim`, :mod:`repro.xfstests`, :mod:`repro.bench` — the
  evaluation substrates (Docker-Slim analogue, filesystem regression suite,
  Phoronix-style benchmark harness).

Quickstart::

    from repro.kernel import boot
    from repro.container import DockerEngine, ImageBuilder
    from repro.core import attach

    machine = boot()
    docker = DockerEngine(machine)
    image = ImageBuilder("app").add_file("/usr/bin/app", size=1 << 20,
                                         mode=0o755).entrypoint("/usr/bin/app").build()
    container = docker.run(image, name="app")
    session = attach(machine, docker, "app")
    session.shell_syscalls.listdir("/usr/bin")   # host tools, inside the container
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
