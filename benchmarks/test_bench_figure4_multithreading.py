"""Figure 4: sequential-read throughput as the CntrFS thread count grows."""

import pytest

from repro.bench.harness import figure4_thread_sweep


@pytest.fixture(scope="module")
def sweep():
    return figure4_thread_sweep(thread_counts=(1, 2, 4, 8, 16), size_mb=16)


def test_figure4_thread_sweep(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for point in sweep:
        benchmark.extra_info[f"threads_{point.threads}_mb_s"] = round(
            point.throughput_mb_s, 1)
    assert [p.threads for p in sweep] == [1, 2, 4, 8, 16]


def test_figure4_more_threads_cost_a_little_throughput(sweep):
    """Paper: throughput drops by up to ~8% going from 1 to 16 threads."""
    single = next(p for p in sweep if p.threads == 1)
    sixteen = next(p for p in sweep if p.threads == 16)
    drop = 1.0 - sixteen.throughput_mb_s / single.throughput_mb_s
    assert 0.0 <= drop <= 0.25, f"unexpected multithreading penalty: {drop:.1%}"


def test_figure4_throughput_monotonically_non_increasing(sweep):
    throughputs = [p.throughput_mb_s for p in sweep]
    assert all(a >= b * 0.98
               for a, b in zip(throughputs, throughputs[1:], strict=False))
