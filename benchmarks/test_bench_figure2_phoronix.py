"""Figure 2: relative overhead of CntrFS for the Phoronix disk suite.

One pytest-benchmark entry per workload; ``extra_info`` carries the measured
relative overhead next to the value reported in the paper so the two can be
compared from the benchmark JSON output.
"""

import pytest

from repro.bench.harness import run_comparison
from repro.bench.phoronix import ALL_WORKLOADS


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_figure2_relative_overhead(benchmark, workload):
    result_holder = {}

    def run_once():
        result_holder["result"] = run_comparison(workload)
        return result_holder["result"].cntr_ns

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    result = result_holder["result"]
    benchmark.extra_info["workload"] = workload.name
    benchmark.extra_info["measured_overhead"] = round(result.overhead, 2)
    benchmark.extra_info["paper_overhead"] = workload.paper_overhead
    benchmark.extra_info["native_virtual_ms"] = result.native_ns / 1e6
    benchmark.extra_info["cntr_virtual_ms"] = result.cntr_ns / 1e6
    assert result.native_ns > 0 and result.cntr_ns > 0


def test_figure2_shape_summary():
    """Aggregate shape check: the worst cases and the wins match the paper."""
    from repro.bench.phoronix import (
        CompilebenchCreate,
        CompilebenchRead,
        Dbench,
        Fio,
        PostMark,
        ThreadedIoWrite,
    )

    lookups_heavy = [run_comparison(w) for w in
                     (CompilebenchRead(), CompilebenchCreate(), PostMark())]
    cache_friendly = run_comparison(Dbench(12, paper_overhead=0.9))
    writeback_wins = [run_comparison(w) for w in (Fio(), ThreadedIoWrite())]

    # Lookup-heavy workloads are the worst cases (paper: 13.3x / 7.3x / 7.1x).
    assert all(r.overhead > 2.5 for r in lookups_heavy)
    # Cache-friendly file-server mixes stay close to native (paper: ~0.9-1.0x).
    assert cache_friendly.overhead < 2.0
    # Writeback-friendly write workloads do not lose to native (paper: 0.2-0.3x).
    assert all(r.overhead < 1.6 for r in writeback_wins)
