"""Ablation benches for the design choices DESIGN.md calls out.

These are not figures from the paper; they quantify the trade-offs the paper
discusses in prose: splice-write disabled by default, the delayed-sync
consistency trade-off of the writeback cache, and the missing kernel-side
xattr cache that causes the small-write overhead.
"""


from repro.bench.harness import BenchEnvironment, _run_in
from repro.bench.phoronix import IoZoneWrite, Sqlite
from repro.fuse.options import FuseMountOptions


def _measure(workload, options=None, delay_sync=True, xattr_lookup=True):
    env = BenchEnvironment(options=options or FuseMountOptions.paper_defaults(),
                           delay_sync=delay_sync)
    env.client.xattr_lookup_on_write = xattr_lookup
    return _run_in(env, workload, through_cntr=True)


def test_ablation_splice_write_costs_more(benchmark):
    """The paper disables splice-write because the header peek adds a context switch."""
    defaults = FuseMountOptions.paper_defaults()
    off = _measure(IoZoneWrite(size_mb=8), defaults.with_overrides(splice_write=False,
                                                                   writeback_cache=False))
    on = _measure(IoZoneWrite(size_mb=8), defaults.with_overrides(splice_write=True,
                                                                  writeback_cache=False))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["splice_write_off_ms"] = off / 1e6
    benchmark.extra_info["splice_write_on_ms"] = on / 1e6
    assert on >= off * 0.95, "splice-write should not be a clear win (paper disables it)"


def test_ablation_delayed_sync_tradeoff(benchmark):
    """Delaying sync (writeback consistency trade-off) speeds up fsync-heavy loads."""
    delayed = _measure(Sqlite(), delay_sync=True)
    strict = _measure(Sqlite(), delay_sync=False)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["delayed_sync_ms"] = delayed / 1e6
    benchmark.extra_info["strict_sync_ms"] = strict / 1e6
    assert delayed < strict


def test_ablation_hypothetical_xattr_cache(benchmark):
    """Caching security.capability would remove the small-write overhead."""
    with_lookup = _measure(IoZoneWrite(size_mb=8), xattr_lookup=True)
    without_lookup = _measure(IoZoneWrite(size_mb=8), xattr_lookup=False)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["with_xattr_lookup_ms"] = with_lookup / 1e6
    benchmark.extra_info["without_xattr_lookup_ms"] = without_lookup / 1e6
    assert without_lookup < with_lookup
