"""Figure 3: effectiveness of the individual CntrFS optimizations."""

import pytest

from repro.bench.harness import figure3_optimization_effects


@pytest.fixture(scope="module")
def effects():
    return {e.name: e for e in figure3_optimization_effects()}


def test_figure3_collects_all_four_panels(benchmark, effects):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, effect in effects.items():
        benchmark.extra_info[f"{name}_before"] = round(effect.before, 1)
        benchmark.extra_info[f"{name}_after"] = round(effect.after, 1)
        benchmark.extra_info[f"{name}_improvement"] = round(effect.improvement, 2)
    assert set(effects) == {"read_cache", "writeback_cache", "batching", "splice_read"}


def test_figure3a_read_cache_improves_threaded_reads(effects):
    # Paper: ~10x with FOPEN_KEEP_CACHE.  Shape requirement: a substantial win.
    assert effects["read_cache"].improvement > 1.5


def test_figure3b_writeback_cache_improves_sequential_writes(effects):
    # Paper: +65% write throughput.
    assert effects["writeback_cache"].improvement > 1.2


def test_figure3c_batching_improves_tree_reads(effects):
    # Paper: ~2.5x with FUSE_PARALLEL_DIROPS.
    assert effects["batching"].improvement > 1.05


def test_figure3d_splice_read_is_a_small_effect(effects):
    # Paper: ~5% improvement; shape requirement: small effect either way.
    assert 0.7 < effects["splice_read"].improvement < 1.5
