"""Hot-path regression guard: the simulator must stay O(extents), not O(pages).

The full 1 GiB acceptance run lives in ``BENCH_hotpath.json`` (regenerate with
``PYTHONPATH=src python -m repro.bench.hotpath``); CI runs a smoke-scale pass
plus structural assertions that would catch a regression to per-page loops
long before wall-clock timing does.
"""

import json
import os

import pytest

from repro.bench.hotpath import run_hotpath

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")

SMOKE_MB = 64


@pytest.fixture(scope="module")
def smoke():
    return run_hotpath(size_mb=SMOKE_MB, record_kb=64, page_cache_mb=512)


def test_hotpath_smoke_runs_all_phases(benchmark, smoke):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for result in smoke:
        benchmark.extra_info[f"{result.workload}_wall_s"] = round(result.wall_seconds, 3)
        benchmark.extra_info[f"{result.workload}_virtual_ms"] = round(result.virtual_ms, 1)
    assert [r.workload for r in smoke] == \
        ["seq_write", "seq_read_cold", "seq_read_warm"]
    assert all(r.virtual_ms > 0 for r in smoke)


def test_hotpath_smoke_is_not_pathologically_slow(smoke):
    """The seed implementation took >10s for the write phase at this scale
    (O(resident pages) writeback scans); the extent engine takes well under a
    second.  A generous bound keeps this robust on slow CI machines while
    still catching any O(pages)-per-syscall regression."""
    write = next(r for r in smoke if r.workload == "seq_write")
    assert write.wall_seconds < 5.0, \
        f"sequential write took {write.wall_seconds:.1f}s at {SMOKE_MB}MiB"


def test_sequential_workload_stays_extent_compact():
    """After a sequential write+read, the page cache must hold the file in a
    number of extents orders of magnitude below its page count."""
    from repro.bench.harness import BenchEnvironment
    from repro.fs.constants import OpenFlags

    env = BenchEnvironment(page_cache_mb=256)
    sc, base = env.cntr_access()
    sc.makedirs(f"{base}/compact")
    fd = sc.open(f"{base}/compact/f", OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
    for _ in range(256):                      # 16 MiB in 64 KiB records
        sc.write(fd, b"w" * 65536)
    sc.fsync(fd)
    sc.close(fd)
    cache = env.client.page_cache
    assert len(cache) == 4096                 # 16 MiB resident
    assert cache.extent_count() < 4096 // 4, \
        f"{cache.extent_count()} extents for {len(cache)} pages"
    # fsync flushed the writeback buffer: the dirty index must be fully
    # drained, at extent as well as page granularity.
    assert cache.dirty_extent_count() == 0
    assert cache.dirty_page_count() == 0


def test_committed_bench_json_proves_the_speedup():
    """Acceptance criterion: >=5x wall-clock on the 1 GiB workload vs seed."""
    with open(BENCH_JSON) as fh:
        data = json.load(fh)
    assert "seed" in data and "optimized" in data
    assert data["speedup"]["total"] >= 5.0
    # The cost model must not have drifted: simulated time is identical in
    # both runs, phase by phase.
    seed_phases = {p["workload"]: p for p in data["seed"]["phases"]}
    for phase in data["optimized"]["phases"]:
        assert phase["virtual_ms"] == seed_phases[phase["workload"]]["virtual_ms"]
