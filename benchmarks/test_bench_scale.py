"""Multi-tenant scale guard: the scheduler axes must steer the numbers.

Three contracts are enforced here (see PERFORMANCE.md "Multi-tenant
scheduling"):

* **Axis shapes** — in the committed ``BENCH_scale.json``, more containers
  mean proportionally more virtual time at constant per-tenant CPU usage;
  more server threads mean monotonically less background-queue congestion
  stall; a tighter ``cpu.max`` means more throttled time at *identical*
  usage.  The same shapes are re-measured live at smoke scale.
* **Determinism** — re-running a cell with the same seed reproduces the
  pick-trace digest and the virtual time exactly.
* **Append-only history** — the committed sweeps are pinned by hash; a
  regeneration may only add new sweeps or rows with new keys on new rows,
  never rewrite what previous PRs published.
"""

import hashlib
import json
import os

import pytest

from repro.bench.scale import run_scale

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_scale.json")

#: The sweeps that exist as of this file's introduction.  Their committed
#: rows are append-only history, pinned by the canonical-JSON hash below.
HISTORICAL_SWEEPS = ("containers", "threads", "cpu_max")
HISTORICAL_SWEEPS_SHA256 = \
    "8715dec23ce2c1b8ef636fae4adb977bd9113af6c5ea053ffb7102cae370e06a"


@pytest.fixture(scope="module")
def committed():
    with open(BENCH_JSON) as fh:
        return json.load(fh)["sweeps"]


def test_committed_history_is_append_only(committed):
    canon = json.dumps({name: committed[name] for name in HISTORICAL_SWEEPS},
                       indent=2, sort_keys=True)
    assert hashlib.sha256(canon.encode()).hexdigest() == \
        HISTORICAL_SWEEPS_SHA256


def test_committed_containers_sweep_scales_linearly(committed):
    runs = committed["containers"]
    counts = [r["containers"] for r in runs]
    virtual = [r["virtual_ms"] for r in runs]
    assert counts == sorted(counts) and counts[0] < counts[-1]
    assert virtual == sorted(virtual) and virtual[0] < virtual[-1]
    # Fairness: per-tenant CPU usage is independent of the tenant count
    # (same workload, same weights), so total usage scales linearly.
    per_tenant = [r["usage_usec_total"] / r["containers"] for r in runs]
    for usage in per_tenant[1:]:
        assert usage == pytest.approx(per_tenant[0], rel=0.02)
    # Within a run every tenant gets the same usage (equal weights).
    for r in runs:
        usages = [t["usage_usec"] for t in r["tenants"]]
        assert max(usages) - min(usages) <= max(2, max(usages) // 50)


def test_committed_threads_sweep_drains_congestion(committed):
    runs = committed["threads"]
    threads = [r["threads"] for r in runs]
    waits = [r["queue_congestion_wait_ms"] for r in runs]
    assert threads == sorted(threads) and threads[0] < threads[-1]
    assert waits == sorted(waits, reverse=True) and waits[0] > waits[-1]
    for r in runs:
        assert r["queue_congestion_waits"] > 0
        assert r["queue_max_depth"] > 12     # bursts overflow max_background


def test_committed_cpu_max_sweep_throttles_not_works(committed):
    runs = committed["cpu_max"]
    base = runs[0]
    assert base["cpu_max"] == "max"
    assert base["nr_throttled_total"] == 0
    assert base["throttled_usec_total"] == 0
    throttled = [r["throttled_usec_total"] for r in runs]
    virtual = [r["virtual_ms"] for r in runs]
    assert throttled == sorted(throttled) and throttled[-1] > 0
    assert virtual == sorted(virtual) and virtual[0] < virtual[-1]
    # The quota changes *when* tenants run, never how much work they do.
    for r in runs[1:]:
        assert r["usage_usec_total"] == base["usage_usec_total"]


def test_committed_rows_carry_reproducibility_evidence(committed):
    for runs in committed.values():
        for r in runs:
            assert len(r["pick_digest"]) == 64
            assert r["seed"] == runs[0]["seed"]


@pytest.fixture(scope="module")
def live_cells():
    """Two smoke-scale cells, one of them run twice for the determinism lock."""
    return {
        "t1": run_scale(2, 1, records=32),
        "t4": run_scale(2, 4, records=32),
        "t4_again": run_scale(2, 4, records=32),
        "capped": run_scale(2, 4, cpu_max="1000 10000", records=48),
    }


def test_live_same_seed_reproduces_exactly(live_cells):
    first, again = live_cells["t4"], live_cells["t4_again"]
    assert first.pick_digest == again.pick_digest
    assert first.virtual_ms == again.virtual_ms
    assert first.usage_usec_total == again.usage_usec_total


def test_live_threads_reduce_congestion_wait(live_cells):
    assert live_cells["t4"].queue_congestion_wait_ms < \
        live_cells["t1"].queue_congestion_wait_ms
    assert live_cells["t1"].queue_congestion_waits > 0


def test_live_quota_adds_throttled_wait(live_cells):
    free, capped = live_cells["t4"], live_cells["capped"]
    assert capped.nr_throttled_total > 0
    assert capped.throttled_usec_total > 0
    assert free.nr_throttled_total == 0
