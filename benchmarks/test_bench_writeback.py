"""Writeback-subsystem guard: tunables must steer flushes, defaults must not.

Two contracts are enforced here (see PERFORMANCE.md "The unified writeback
contract"):

* **Default equivalence** — with untouched ``vm.dirty_*`` knobs the unified
  engine reproduces the seed's flush points exactly, pinned as exact
  ``virtual_ms`` values of the hot-path smoke workload (the simulation is
  deterministic, so exact equality is meaningful and portable).
* **Tunability** — lowering ``vm.dirty_bytes`` (or the background threshold)
  yields more, smaller flushes and monotonically more virtual time, because
  each flush pays the fixed ``fuse_writeback_flush_ns`` while byte costs are
  constant.  Asserted live at smoke scale and against the committed
  ``BENCH_writeback.json``.
"""

import hashlib
import json
import os

import pytest

from repro.bench.writeback import run_dirty_workload

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_writeback.json")

#: The scenarios that existed before the memcg sweep.  Their committed rows
#: are append-only history: the guard below pins their canonical JSON by
#: hash, so a regeneration can only ever *add* scenarios (or rows with new
#: keys on new rows), never rewrite what previous PRs published.
HISTORICAL_SCENARIOS = (
    "defaults", "dirty_bytes", "dirty_background_bytes",
    "dirty_expire_centisecs", "fsync_storm", "dirty_ratio",
    "bdi_write_bandwidth", "mem_pressure", "read_bdi",
)
HISTORICAL_SCENARIOS_SHA256 = \
    "42de77d8c9e11ca5c9b43f6eae1ec647e706f306c5c50df55762d4ee8357d414"

#: Exact seed-era virtual times of the 16 MiB hot-path smoke phases.  The
#: unified writeback engine (PR 2) must leave them untouched under default
#: tunables; update ONLY for a deliberate cost-model change.
SEED_HOTPATH_16MB_VIRTUAL_MS = {
    "seq_write": 14.026,
    "seq_read_cold": 7.932804,
    "seq_read_warm": 4.283004,
}


def test_default_tunables_reproduce_seed_flush_points():
    from repro.bench.hotpath import run_hotpath

    results = run_hotpath(size_mb=16, record_kb=64, page_cache_mb=256)
    measured = {r.workload: round(r.virtual_ms, 6) for r in results}
    assert measured == SEED_HOTPATH_16MB_VIRTUAL_MS


@pytest.fixture(scope="module")
def dirty_bytes_sweep():
    """8 MiB of dirty writes under a falling vm.dirty_bytes hard limit."""
    return [
        run_dirty_workload("dirty_bytes",
                           {"dirty_background_bytes": 0, "dirty_bytes": limit},
                           size_mb=8, page_cache_mb=256)
        for limit in (512 << 10, 2 << 20, 8 << 20)
    ]


def test_lower_dirty_bytes_means_more_smaller_flushes(dirty_bytes_sweep):
    flushes = [r.flushes for r in dirty_bytes_sweep]
    mean_kb = [r.mean_flush_kb for r in dirty_bytes_sweep]
    assert flushes == sorted(flushes, reverse=True) and flushes[0] > flushes[-1]
    assert mean_kb == sorted(mean_kb) and mean_kb[0] < mean_kb[-1]
    for r in dirty_bytes_sweep:
        assert set(r.flushes_by_reason) == {"dirty_limit"}


def test_flush_count_deltas_explain_virtual_time(dirty_bytes_sweep):
    """The virtual-time delta between two settings is exactly the fixed
    per-flush cost times the flush-count delta: byte-proportional costs
    (copies, page-cache accounting, per-request overheads) are identical
    because the same bytes travel in the same total number of max_write-sized
    requests either way.  Each extra flush costs the client its
    ``fuse_writeback_flush_ns`` and — because /proc/sys/vm retunes every
    mounted filesystem — one random-access seek on the backing ext4, whose
    flusher catches up at the same cadence with a device write at offset 0."""
    from repro.sim.costs import DEFAULT_COST_MODEL as costs

    virtual = [r.virtual_ms for r in dirty_bytes_sweep]
    assert virtual == sorted(virtual, reverse=True) and virtual[0] > virtual[-1]
    per_flush_ns = costs.fuse_writeback_flush_ns + costs.disk_seek_ns
    for a, b in zip(dirty_bytes_sweep, dirty_bytes_sweep[1:], strict=False):
        expected_delta_ms = (a.flushes - b.flushes) * per_flush_ns / 1e6
        assert (a.virtual_ms - b.virtual_ms) == \
            pytest.approx(expected_delta_ms, rel=1e-3)


def test_fsync_cadence_drives_flushes_when_thresholds_idle():
    runs = [run_dirty_workload("fsync_storm", {"dirty_background_bytes": 0},
                               size_mb=8, fsync_every=every, page_cache_mb=256)
            for every in (16, 64)]
    assert runs[0].flushes > runs[1].flushes
    for r in runs:
        assert set(r.flushes_by_reason) == {"fsync"}


def test_dirty_ratio_resolves_like_dirty_bytes():
    """A ratio over a shrunk modelled memory must act exactly like the byte
    threshold it resolves to: same flush count, same flush sizes, same
    virtual time (the deterministic simulation makes equality exact)."""
    ratio_run = run_dirty_workload(
        "dirty_ratio", {"dirty_background_bytes": 0, "dirty_ratio": 4},
        size_mb=8, page_cache_mb=256, mem_total_mb=64)
    bytes_run = run_dirty_workload(
        "dirty_bytes",
        {"dirty_background_bytes": 0, "dirty_bytes": (64 << 20) * 4 // 100},
        size_mb=8, page_cache_mb=256)
    assert ratio_run.flushes == bytes_run.flushes
    assert ratio_run.mean_flush_kb == bytes_run.mean_flush_kb
    assert ratio_run.virtual_ms == bytes_run.virtual_ms
    # Threshold crossings flush as "dirty_limit"; the sub-threshold residue
    # is written back at release ("sync") — identically in both runs.
    assert ratio_run.flushes_by_reason == bytes_run.flushes_by_reason
    assert ratio_run.flushes_by_reason.get("dirty_limit", 0) > 0


def test_bdi_bandwidth_shapes_flush_cost():
    """Lower modelled write bandwidth => more virtual time, with the delta
    exactly the BDI busy time; bytes flushed are conserved."""
    runs = [run_dirty_workload(
                "bdi", {"dirty_background_bytes": 0, "dirty_bytes": 1 << 20},
                size_mb=8, page_cache_mb=256, bdi_write_mb_s=bandwidth)
            for bandwidth in (0, 400, 100)]
    base = runs[0]
    assert base.bdi_busy_ms == 0.0
    for run in runs[1:]:
        assert run.flushes == base.flushes
        assert run.flushed_kb == base.flushed_kb
        assert run.virtual_ms - base.virtual_ms == \
            pytest.approx(run.bdi_busy_ms, abs=1e-6)
    virtual = [r.virtual_ms for r in runs]
    assert virtual == sorted(virtual) and virtual[0] < virtual[-1]


def test_mem_pressure_reclaims_more_as_memory_shrinks():
    """Smaller modelled memory ⇒ more reclaimed pages, more reclaim-reason
    flushes and more virtual time; the reclaim-off baseline reclaims
    nothing."""
    from repro.bench.writeback import run_dirty_workload

    runs = [run_dirty_workload("mem_pressure", {"dirty_background_bytes": 0},
                               size_mb=8, page_cache_mb=256, reclaim_mem_mb=mem)
            for mem in (0, 6, 3)]
    base = runs[0]
    assert base.reclaimed_kb == 0.0 and base.reclaim_flushed_kb == 0.0
    reclaimed = [r.reclaimed_kb for r in runs]
    assert reclaimed == sorted(reclaimed) and reclaimed[0] < reclaimed[-1]
    for run in runs[1:]:
        assert run.reclaim_flushed_kb > 0, \
            "pressure flushes dirty pages through the engine"
        assert run.flushes > base.flushes
        assert run.virtual_ms > base.virtual_ms


def test_read_bdi_bandwidth_shapes_read_cost():
    """Lower modelled read bandwidth ⇒ more virtual time, with the delta
    exactly the BDI read-busy time; bytes fetched are conserved."""
    from repro.bench.writeback import run_read_workload

    runs = [run_read_workload("read_bdi", size_mb=8, page_cache_mb=256,
                              bdi_read_mb_s=bandwidth)
            for bandwidth in (0, 400, 100)]
    base = runs[0]
    assert base.bdi_read_busy_ms == 0.0
    for run in runs[1:]:
        assert run.read_kb == base.read_kb
        assert run.virtual_ms - base.virtual_ms == \
            pytest.approx(run.bdi_read_busy_ms, abs=1e-6)
    virtual = [r.virtual_ms for r in runs]
    assert virtual == sorted(virtual) and virtual[0] < virtual[-1]


def test_committed_bench_json_shows_tunable_flush_behaviour():
    with open(BENCH_JSON) as fh:
        data = json.load(fh)
    scenarios = data["scenarios"]
    # Every swept scenario is ordered from the most aggressive setting to the
    # laziest: flush counts fall, flush sizes grow, virtual time falls.  The
    # ratio sweep behaves exactly like a bytes sweep because the ratios
    # resolve to byte thresholds against the modelled memory.
    for name in ("dirty_bytes", "dirty_background_bytes",
                 "dirty_expire_centisecs", "fsync_storm", "dirty_ratio"):
        runs = scenarios[name]
        assert len(runs) >= 2, name
        flushes = [r["flushes"] for r in runs]
        mean_kb = [r["mean_flush_kb"] for r in runs]
        virtual = [r["virtual_ms"] for r in runs]
        assert flushes == sorted(flushes, reverse=True) and flushes[0] > flushes[-1]
        assert mean_kb == sorted(mean_kb) and mean_kb[0] < mean_kb[-1]
        assert virtual == sorted(virtual, reverse=True), name
    # The BDI sweep conserves flush behaviour and grows only the bandwidth
    # term: virtual-time deltas against the unshaped baseline decompose to
    # the BDI busy time exactly.
    bdi_runs = scenarios["bdi_write_bandwidth"]
    base = bdi_runs[0]
    assert base["bdi_write_mb_s"] == 0 and base["bdi_busy_ms"] == 0.0
    for run in bdi_runs[1:]:
        assert run["flushes"] == base["flushes"]
        assert run["flushed_kb"] == base["flushed_kb"]
        assert run["virtual_ms"] - base["virtual_ms"] == \
            pytest.approx(run["bdi_busy_ms"], abs=2e-3)
    bdi_virtual = [r["virtual_ms"] for r in bdi_runs]
    assert bdi_virtual == sorted(bdi_virtual) and bdi_virtual[0] < bdi_virtual[-1]
    # The default run flushes at the seed's aggregation points: one
    # background flush per writeback_batch_bytes of dirty data.
    default = scenarios["defaults"][0]
    assert default["tunables"] == {}
    assert default["mean_flush_kb"] == 128.0
    assert set(default["flushes_by_reason"]) == {"background"}
    # The pre-reclaim scenario rows carry none of the reclaim/read fields:
    # their JSON is byte-identical to the PR 3 file.
    for name in ("defaults", "dirty_bytes", "dirty_background_bytes",
                 "dirty_expire_centisecs", "fsync_storm", "dirty_ratio",
                 "bdi_write_bandwidth"):
        for run in scenarios[name]:
            assert "reclaim_mem_mb" not in run and "bdi_read_mb_s" not in run
    # The memory-pressure sweep: the reclaim-off baseline reclaims nothing;
    # shrinking memory reclaims more, flushes more and costs more time.
    pressure = scenarios["mem_pressure"]
    assert pressure[0]["reclaim_mem_mb"] == 0
    assert pressure[0]["reclaimed_kb"] == 0.0
    mems = [r["reclaim_mem_mb"] for r in pressure[1:]]
    assert mems == sorted(mems, reverse=True)
    reclaimed = [r["reclaimed_kb"] for r in pressure]
    flushes = [r["flushes"] for r in pressure]
    assert reclaimed == sorted(reclaimed) and reclaimed[0] < reclaimed[-1]
    assert flushes == sorted(flushes) and flushes[0] < flushes[-1]
    for run in pressure[1:]:
        assert run["reclaim_flushed_kb"] > 0
        assert run["flushes_by_reason"].get("reclaim", 0) > 0
        assert run["virtual_ms"] > pressure[0]["virtual_ms"]
    # The read sweep: bytes fetched conserved, virtual-time deltas equal to
    # the BDI read-busy time exactly, monotone in falling bandwidth.
    reads = scenarios["read_bdi"]
    read_base = reads[0]
    assert read_base["bdi_read_mb_s"] == 0 and read_base["bdi_read_busy_ms"] == 0.0
    for run in reads[1:]:
        assert run["read_kb"] == read_base["read_kb"]
        assert run["virtual_ms"] - read_base["virtual_ms"] == \
            pytest.approx(run["bdi_read_busy_ms"], abs=2e-3)
    read_virtual = [r["virtual_ms"] for r in reads]
    assert read_virtual == sorted(read_virtual) and read_virtual[0] < read_virtual[-1]


def test_committed_bench_json_memcg_sweep():
    """The memcg sweep: shrinking memory.max ⇒ monotonically more per-cgroup
    reclaim, flush-before-drop and writer stall; the virtual-time delta
    against the unlimited base row is exactly stall + reclaim cost."""
    with open(BENCH_JSON) as fh:
        scenarios = json.load(fh)["scenarios"]
    # Historical rows never carry the memcg keys (byte-identical history).
    for name in HISTORICAL_SCENARIOS:
        for run in scenarios[name]:
            assert "memcg_max_mb" not in run and "memcg_stall_ms" not in run
    rows = scenarios["memcg"]
    base = rows[0]
    assert base["memcg_max_mb"] == 0
    assert base["memcg_reclaimed_kb"] == 0.0
    assert base["memcg_stall_ms"] == 0.0 and base["memcg_reclaim_cost_ms"] == 0.0
    maxes = [r["memcg_max_mb"] for r in rows[1:]]
    assert maxes == sorted(maxes, reverse=True)
    reclaimed = [r["memcg_reclaimed_kb"] for r in rows]
    flushed = [r["memcg_reclaim_flushed_kb"] for r in rows]
    stalls = [r["memcg_stall_ms"] for r in rows]
    virtual = [r["virtual_ms"] for r in rows]
    assert reclaimed == sorted(reclaimed) and reclaimed[0] < reclaimed[-1]
    assert flushed == sorted(flushed) and flushed[0] < flushed[-1]
    assert stalls == sorted(stalls) and stalls[0] < stalls[-1]
    assert virtual == sorted(virtual) and virtual[0] < virtual[-1]
    for run in rows[1:]:
        assert run["memcg_high_mb"] == run["memcg_max_mb"] // 2
        assert run["memcg_reclaim_cost_ms"] > 0, "reclaim flushed dirty backing pages"
        assert run["virtual_ms"] - base["virtual_ms"] == pytest.approx(
            run["memcg_stall_ms"] + run["memcg_reclaim_cost_ms"], abs=2e-3)


def test_memcg_sweep_decomposes_exactly_live():
    """Live, unrounded: the memcg rows' virtual-time delta equals writer
    stall plus reclaim flush cost to the nanosecond, per-cgroup reclaim is
    conserved exactly, and a shrinking budget reclaims monotonically more."""
    runs = [run_dirty_workload("memcg", {"dirty_background_bytes": 0},
                               size_mb=8, record_kb=128, fsync_every=1,
                               page_cache_mb=256,
                               memcg_max_mb=mem_max, memcg_high_mb=mem_max // 2)
            for mem_max in (0, 4, 2)]
    base = runs[0]
    assert base.memcg_reclaimed_kb == 0.0 and base.memcg_stall_ms == 0.0
    for run in runs[1:]:
        # Exact decomposition: the only costs a budget adds are the writer
        # stalls and the reclaim windows (flush-before-drop of the backing
        # store's dirty pages, which the unlimited run never flushes).
        assert run.virtual_ms - base.virtual_ms == pytest.approx(
            run.memcg_stall_ms + run.memcg_reclaim_cost_ms, abs=1e-6)
        assert run.memcg_reclaim_flushed_kb > 0
        assert run.memcg_stall_ms > 0
    reclaimed = [r.memcg_reclaimed_kb for r in runs]
    assert reclaimed == sorted(reclaimed) and reclaimed[0] < reclaimed[-1]
    # Conservation, exact: every reclaimed byte is a dropped-clean or
    # flushed-dirty page and the counters agree — checked on the live
    # cgroup object of a fresh run.
    from repro.bench.harness import BenchEnvironment
    from repro.bench.writeback import apply_memcg_limits, apply_vm_tunables
    env = BenchEnvironment(page_cache_mb=256)
    apply_vm_tunables(env, {"dirty_background_bytes": 0})
    cgroup = apply_memcg_limits(env, 2, 1)
    sc, basedir = env.cntr_access()
    sc.makedirs(f"{basedir}/wb")
    from repro.fs.constants import OpenFlags
    fd = sc.open(f"{basedir}/wb/c.dat", OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
    for _ in range(64):
        sc.write(fd, b"c" * (128 << 10))
        sc.fsync(fd)
    sc.close(fd)
    stats = cgroup.memcg_stats
    assert stats.pages_reclaimed == stats.pages_dropped + stats.pages_flushed
    assert stats.bytes_reclaimed == stats.pages_reclaimed * 4096
    assert cgroup.mem_cache_bytes <= 2 << 20


def test_committed_bench_json_history_is_append_only():
    """Byte-level guard: the pre-memcg scenarios' rows are pinned by hash.
    Regenerating the file may only append new scenarios (or new keys on new
    rows); rewriting published history fails here."""
    with open(BENCH_JSON) as fh:
        scenarios = json.load(fh)["scenarios"]
    historical = {name: scenarios[name] for name in HISTORICAL_SCENARIOS}
    canon = json.dumps(historical, indent=2, sort_keys=True)
    assert hashlib.sha256(canon.encode()).hexdigest() == \
        HISTORICAL_SCENARIOS_SHA256
