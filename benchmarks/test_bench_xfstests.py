"""Section 5.1: the xfstests generic-group correctness table."""


from repro.xfstests import (
    PAPER_FAILING_TESTS,
    XfstestsRunner,
    cntrfs_environment,
    native_environment,
)


def test_xfstests_cntrfs_pass_rate(benchmark):
    summary_holder = {}

    def run_suite():
        summary_holder["summary"] = XfstestsRunner(cntrfs_environment).run()

    benchmark.pedantic(run_suite, rounds=1, iterations=1)
    summary = summary_holder["summary"]
    benchmark.extra_info["passed"] = summary.passed
    benchmark.extra_info["total"] = summary.total
    benchmark.extra_info["pass_rate_percent"] = round(summary.pass_rate * 100, 2)
    benchmark.extra_info["failing"] = summary.failing_ids()
    assert summary.passed == 205 and summary.total == 209
    assert sorted(summary.failing_ids()) == sorted(PAPER_FAILING_TESTS)


def test_xfstests_native_baseline(benchmark):
    summary_holder = {}

    def run_suite():
        summary_holder["summary"] = XfstestsRunner(native_environment).run()

    benchmark.pedantic(run_suite, rounds=1, iterations=1)
    summary = summary_holder["summary"]
    benchmark.extra_info["passed"] = summary.passed
    benchmark.extra_info["total"] = summary.total
    assert summary.passed == summary.total == 209
