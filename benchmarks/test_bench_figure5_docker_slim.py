"""Figure 5: container-size reduction from Docker Slim on the Top-50 images."""

import pytest

from repro.bench.harness import figure5_docker_slim, format_figure5


@pytest.fixture(scope="module")
def sweep():
    return figure5_docker_slim(max_files=300)


def test_figure5_reduction_histogram(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["mean_reduction_percent"] = round(sweep.mean_reduction, 1)
    benchmark.extra_info["paper_mean_reduction_percent"] = 66.6
    benchmark.extra_info["below_10_percent"] = sweep.count_below(10.0)
    benchmark.extra_info["histogram"] = sweep.histogram()
    print()
    print(format_figure5(sweep))
    assert len(sweep.reports) == 50


def test_figure5_mean_matches_paper(sweep):
    assert sweep.mean_reduction == pytest.approx(66.6, abs=3.0)


def test_figure5_single_binary_images(sweep):
    assert sweep.count_below(10.0) == 6


def test_figure5_bulk_of_images_between_60_and_97(sweep):
    assert sweep.count_between(60.0, 97.0) / len(sweep.reports) >= 0.75
