#!/usr/bin/env python3
"""Print the component inventory next to the paper's §4 implementation stats.

Run with:  python examples/component_inventory.py
"""

from repro.core.inventory import format_inventory


def main() -> None:
    print(format_inventory())


if __name__ == "__main__":
    main()
