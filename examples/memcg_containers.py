#!/usr/bin/env python3
"""Two containers under different memory.max budgets racing one workload.

The paper's §3.2.3 point is that processes moved into a container's cgroup —
which is exactly what Cntr does with the debugging tools it injects — are
subject to the container's resource limits.  This example makes that
concrete with the memory controller: two containers are started with
different ``memory.max`` budgets, a "tool" process is attached to each one's
cgroup (the injected-tool path), and both tools run the *same* write
workload against the same host filesystem.  The tight container's tool gets
its page cache reclaimed and its writer stalled; the roomy one runs free.

Run with:  python examples/memcg_containers.py
"""

from repro.container import DockerEngine, ImageBuilder
from repro.fs.constants import OpenFlags
from repro.kernel import boot
from repro.kernel.cgroups import CgroupLimits

RECORD = 64 << 10
RECORDS = 64                     # 4 MiB per tool


def build_image():
    return (ImageBuilder("svc", "1.0")
            .add_file("/usr/sbin/svc", size=500_000, mode=0o755)
            .entrypoint("/usr/sbin/svc").build())


def cgroupfs_read(sc, path: str) -> str:
    fd = sc.open(path, OpenFlags.O_RDONLY)
    try:
        return sc.read(fd, 1 << 14).decode()
    finally:
        sc.close(fd)


def run_workload(sc, path: str) -> None:
    fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
    try:
        for _ in range(RECORDS):
            sc.write(fd, b"w" * RECORD)
    finally:
        sc.close(fd)


def main() -> None:
    machine = boot()
    kernel = machine.kernel
    docker = DockerEngine(machine)
    image = build_image()

    # docker run --memory: the engine wires the limits into the cgroup the
    # memory controller enforces.
    roomy = docker.run(image, name="roomy",
                       limits=CgroupLimits(memory_limit_bytes=64 << 20))
    tight = docker.run(image, name="tight",
                       limits=CgroupLimits(memory_limit_bytes=1 << 20,
                                           memory_high_bytes=512 << 10))

    print("containers:")
    for container in (roomy, tight):
        cgroup = kernel.cgroups.lookup(container.cgroup_path)
        print(f"  {container.name:<6} cgroup={container.cgroup_path} "
              f"memory.max={cgroup.effective_memory_limit()}")

    # Inject one "tool" per container: a host process moved into the
    # container's cgroup, exactly like Cntr's debugging shell.
    results = []
    for container in (roomy, tight):
        tool = machine.spawn_host_process(["/usr/bin/gdb"])
        cgroup = kernel.cgroups.attach(tool.process.pid, container.cgroup_path)
        start_ns = machine.clock.now_ns
        run_workload(tool, f"/root/{container.name}-trace.dat")
        elapsed_ms = (machine.clock.now_ns - start_ns) / 1e6
        results.append((container, cgroup, elapsed_ms))

    print(f"\nsame workload ({RECORDS * RECORD >> 20} MiB of writes) per tool:")
    for container, cgroup, elapsed_ms in results:
        stats = cgroup.memcg_stats
        print(f"  {container.name:<6} virtual={elapsed_ms:8.3f} ms  "
              f"current={cgroup.mem_cache_bytes >> 10:>6} kB  "
              f"peak={cgroup.stats_memory_peak >> 10:>6} kB  "
              f"reclaimed={stats.bytes_reclaimed >> 10:>6} kB "
              f"(flushed-first {stats.pages_flushed * 4} kB)  "
              f"stall={stats.throttle_stall_ns / 1e6:7.3f} ms")

    # The same numbers through the operator surface, /sys/fs/cgroup.
    sc = machine.syscalls
    print("\nthrough the cgroupfs:")
    for container, _cgroup, _elapsed in results:
        base = f"/sys/fs/cgroup{container.cgroup_path}"
        current = cgroupfs_read(sc, f"{base}/memory.current").strip()
        stat = {line.split()[0]: line.split()[1]
                for line in cgroupfs_read(sc, f"{base}/memory.stat").splitlines()}
        print(f"  {base}: memory.current={current} "
              f"file_dirty={stat['file_dirty']} "
              f"throttle_stall_ns={stat['throttle_stall_ns']}")

    tight_cg = results[1][1]
    roomy_cg = results[0][1]
    assert tight_cg.memcg_stats.bytes_reclaimed > 0, "the tight budget reclaims"
    assert roomy_cg.memcg_stats.bytes_reclaimed == 0, "the roomy budget does not"
    assert results[1][2] > results[0][2], "the stalled tool is slower"
    print("\nthe tight container's tool was reclaimed and stalled; "
          "the roomy one ran free.")


if __name__ == "__main__":
    main()
