#!/usr/bin/env python3
"""Container-to-host administration (paper use case #3).

Container-oriented distributions (CoreOS, RancherOS) have no package manager;
administrators keep their tools in a container and use Cntr to reach the host
filesystem from it.  Here the "toolbox" container attaches to the host (pid 1)
and edits a host configuration file in place — the "edit files in place and
reload the service" workflow from the paper's conclusion.

Run with:  python examples/host_admin_scenario.py
"""

from repro.container import DockerEngine, ImageBuilder
from repro.core import AttachOptions, attach
from repro.core.attach import APPLICATION_MOUNTPOINT
from repro.fs.constants import OpenFlags
from repro.kernel import boot


def main() -> None:
    machine = boot()
    docker = DockerEngine(machine)

    toolbox_image = (ImageBuilder("toolbox", "latest")
                     .add_file("/bin/bash", size=1_100_000, mode=0o755)
                     .add_file("/usr/bin/vim", size=3_200_000, mode=0o755)
                     .add_file("/usr/bin/htop", size=350_000, mode=0o755)
                     .entrypoint("/bin/bash")
                     .build())
    toolbox = docker.run(toolbox_image, name="toolbox",
                         extra_capabilities={"CAP_SYS_ADMIN", "CAP_SYS_PTRACE"})
    print(f"toolbox container running (pid {toolbox.init_pid}), host untouched")

    # Attach the *toolbox container* to the *host* (pid 1): the tools come from
    # the toolbox image, the filesystem under /var/lib/cntr is the host's root.
    session = attach(machine, docker, pid=1,
                     options=AttachOptions(fat_container="toolbox"))
    shell = session.shell_syscalls
    host_etc = f"{APPLICATION_MOUNTPOINT}/etc"
    print("host files reachable from the toolbox session:",
          ", ".join(sorted(shell.listdir(host_etc))[:6]), "...")

    # Edit a host config file in place (the vim-from-a-container workflow).
    resolv = f"{host_etc}/resolv.conf"
    before = shell.read(shell.open(resolv), 200).decode().strip()
    fd = shell.open(resolv, OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
    shell.write(fd, b"nameserver 10.0.0.2\nnameserver 1.1.1.1\n")
    shell.close(fd)
    after = machine.syscalls.read(machine.syscalls.open("/etc/resolv.conf"), 200)
    print(f"host /etc/resolv.conf before: {before!r}")
    print(f"host /etc/resolv.conf after : {after.decode().strip()!r} "
          "(edited from inside the container)")

    # The toolbox's own tools are still what is running the show.
    print("editor used from the toolbox image:", shell.exists("/usr/bin/vim"))
    session.detach()
    print("detached; toolbox container keeps running for the next admin task")


if __name__ == "__main__":
    main()
