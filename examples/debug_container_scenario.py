#!/usr/bin/env python3
"""Container-to-container debugging in production (paper use case #1).

One *fat* debug container holds the tools; many *slim* application containers
borrow them on demand.  This example also demonstrates Unix-socket forwarding
(the X11/D-Bus path) and the pseudo-TTY shell I/O.

Run with:  python examples/debug_container_scenario.py
"""

from repro.container import DockerEngine, ImageBuilder, Registry
from repro.core import AttachOptions, attach
from repro.kernel import boot


def build_images():
    slim_web = (ImageBuilder("frontend", "slim")
                .add_file("/usr/sbin/nginx", size=1_200_000, mode=0o755)
                .add_file("/etc/nginx/nginx.conf", content="worker_processes 2;\n")
                .entrypoint("/usr/sbin/nginx").build())
    slim_db = (ImageBuilder("orders-db", "slim")
               .add_file("/usr/sbin/postgres", size=8_000_000, mode=0o755)
               .add_file("/etc/postgresql.conf", content="max_connections = 50\n")
               .entrypoint("/usr/sbin/postgres").build())
    fat_tools = (ImageBuilder("debug-tools", "fat")
                 .add_file("/bin/bash", size=1_100_000, mode=0o755)
                 .add_file("/usr/bin/gdb", size=8_500_000, mode=0o755)
                 .add_file("/usr/bin/strace", size=1_600_000, mode=0o755)
                 .add_file("/usr/bin/perf", size=9_000_000, mode=0o755)
                 .add_file("/usr/bin/tcpdump", size=1_200_000, mode=0o755)
                 .add_file("/root/.gdbinit", content="set pagination off\n")
                 .entrypoint("/bin/bash").build())
    return slim_web, slim_db, fat_tools


def main() -> None:
    machine = boot()
    registry = Registry(machine.clock)
    docker = DockerEngine(machine, registry=registry)
    slim_web, slim_db, fat_tools = build_images()
    for image in (slim_web, slim_db, fat_tools):
        registry.push(image)

    print("deployment time estimates (1 Gbit/s registry link):")
    for ref in ("frontend:slim", "orders-db:slim", "debug-tools:fat"):
        print(f"  {ref:<18} {registry.estimate_deploy_time_s(ref) * 1000:7.1f} ms")

    web = docker.run_reference("frontend:slim", name="frontend")
    db = docker.run_reference("orders-db:slim", name="orders-db")
    tools = docker.run_reference("debug-tools:fat", name="debug-tools")
    print(f"\nrunning: {[c.name for c in docker.list_containers()]}")

    # One debug container serves both application containers, one at a time.
    for target in ("frontend", "orders-db"):
        session = attach(machine, docker, target,
                         options=AttachOptions(fat_container="debug-tools",
                                               forward_sockets=()))
        shell = session.shell_syscalls
        tools_visible = sorted(shell.listdir("/usr/bin"))
        app_files = sorted(shell.listdir(session.application_path("/etc")))
        print(f"\nattached to {target!r} using tools from 'debug-tools':")
        print(f"  tools available : {', '.join(tools_visible)}")
        print(f"  app /etc        : {', '.join(app_files)}")

        # Interactive shell round trip through the pseudo-TTY.
        session.pty_forwarder.terminal.type("strace -p 1\n")
        session.pump_io()
        typed = shell.read(0, 100)
        shell.write(1, b"attached to pid 1\n")
        session.pump_io()
        print(f"  typed into shell: {typed.decode().strip()!r}; "
              f"shell replied: {session.pty_forwarder.terminal.read_output().decode().strip()!r}")

        # The debugger from the fat container runs with the app's privileges.
        gdb = session.exec_tool("gdb")
        print(f"  gdb runs with capabilities: "
              f"{sorted(gdb.process.caps.effective)[:4]} ... "
              f"(same bounded set as the app)")
        session.detach()

    print("\nboth application containers stayed slim; the fat image was "
          "attached only while debugging.")


if __name__ == "__main__":
    main()
