#!/usr/bin/env python3
"""Walkthrough: the static-analysis gate catching a determinism bug.

The simulator's replay guarantee — same seed, byte-identical run — dies the
moment simulation code reads the wall clock.  This demo copies a real cost
model into a scratch package, injects the classic mistake (timestamping an
event with ``time.time()``), and shows ``repro.analyze`` rejecting it; then
it shows the suppression workflow and why an unused suppression is itself an
error.

Run with:  PYTHONPATH=src python examples/analyze_demo.py
"""

import shutil
import tempfile
from pathlib import Path

import repro
from repro.analyze import AnalysisConfig, run_analysis

INJECTION = '''

def _debug_stamp():
    """The classic mistake: wall-clock timestamps in simulation code."""
    import time
    return time.time()
'''


def show(title: str, findings) -> None:
    print(f"--- {title}")
    if not findings:
        print("    clean")
    for f in findings:
        print(f"    {Path(f.path).name}:{f.line}: [{f.rule}] {f.message}")
    print()


def main() -> None:
    src = Path(repro.__file__).parent
    scratch = Path(tempfile.mkdtemp(prefix="analyze_demo_"))
    try:
        # A scratch copy of the sim layer — the clock, cost tables, RNG.
        pkg = scratch / "demo"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        shutil.copy(src / "sim" / "costs.py", pkg / "costs.py")

        config = AnalysisConfig(layers=("demo",), hard_bans=(),
                                errno_layers=(), rng_modules=("demo.rng",),
                                wallclock_allow=())

        show("pristine copy of repro/sim/costs.py",
             run_analysis([pkg], config=config))

        # Inject the bug a tired commit at 2am actually writes.
        target = pkg / "costs.py"
        target.write_text(target.read_text() + INJECTION)
        findings = run_analysis([pkg], config=config)
        show("after injecting a time.time() call", findings)
        assert any(f.rule == "determinism" for f in findings), \
            "the analyzer must catch the wall-clock read"

        # Suppressing it makes the run clean again — but the silence is
        # line-anchored and audited, not a blanket waiver.
        text = target.read_text().replace(
            "    return time.time()",
            "    return time.time()  # simlint: ignore[determinism]")
        target.write_text(text)
        show("with a line-anchored suppression", run_analysis([pkg], config=config))

        # Fix the bug but forget the suppression: the stale silence is
        # itself a finding, so exemptions can never outlive their excuse.
        text = target.read_text().replace(
            "    return time.time()  # simlint: ignore[determinism]",
            "    return 0  # simlint: ignore[determinism]")
        target.write_text(text)
        show("bug fixed, suppression forgotten", run_analysis([pkg], config=config))
    finally:
        shutil.rmtree(scratch)


if __name__ == "__main__":
    main()
