#!/usr/bin/env python3
"""Docker-Slim + Cntr: build slim images, get the tools back on demand.

This reproduces the paper's effectiveness argument end to end (§5.3): Docker
Slim identifies the files the application actually needs and removes the rest
(on average 66.6% of the image), and Cntr makes that practical by giving the
removed tools back at runtime instead of baking them into every image.

Run with:  python examples/slim_image_workflow.py
"""

from repro.bench.harness import figure5_docker_slim, format_figure5
from repro.container import DockerEngine, Registry
from repro.core import AttachOptions, attach
from repro.kernel import boot
from repro.slim import DockerSlim, TOP50_CATALOGUE, build_catalogue_image


def main() -> None:
    machine = boot()
    registry = Registry(machine.clock)
    docker = DockerEngine(machine, registry=registry)

    # 1. Slim one image with the dynamic (container-exercising) analysis.
    entry = next(e for e in TOP50_CATALOGUE if e.name == "nginx")
    image = build_catalogue_image(entry, max_files=250)
    slimmer = DockerSlim()
    report = slimmer.analyze_dynamic(docker, image, container_name="nginx-probe")
    slim_image = slimmer.build_slim_image(image, report.accessed_paths)
    print(f"nginx: {report.original_size / 1e6:.0f} MB -> "
          f"{report.slim_size / 1e6:.0f} MB "
          f"({report.reduction_percent:.1f}% reduction, "
          f"{len(report.dropped_tools)} auxiliary tools dropped)")

    # 2. Deploy the slim image and show the deployment-time win.
    registry.push(image)
    registry.push(slim_image)
    print(f"deploy time fat : {registry.estimate_deploy_time_s(image.reference) * 1000:.0f} ms")
    print(f"deploy time slim: {registry.estimate_deploy_time_s(slim_image.reference) * 1000:.0f} ms")
    container = docker.run(slim_image, name="web-slim")

    # 3. The slimmed container lost its shell and tools — attach brings them back.
    app_view = docker.exec_in_container(container, ["/usr/sbin/nginx"])
    print("slim container still runs its entrypoint:",
          app_view.exists(entry.entrypoint))
    session = attach(machine, docker, "web-slim", options=AttachOptions())
    shell = session.shell_syscalls
    print("tools available again through Cntr:",
          ", ".join(n for n in ("gdb", "strace", "vim") if shell.exists(f"/usr/bin/{n}")))
    session.detach()

    # 4. The full Figure 5 sweep over the Top-50 catalogue.
    print("\nFigure 5 sweep over the Top-50 catalogue:")
    print(format_figure5(figure5_docker_slim(max_files=150)))


if __name__ == "__main__":
    main()
