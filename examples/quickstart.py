#!/usr/bin/env python3
"""Quickstart: boot a host, run a slim container, attach to it with Cntr.

This is the minimal end-to-end flow of the paper's Figure 1: a slim
application container without any debugging tools, expanded at runtime with
the host's tools via `attach()`.

Run with:  python examples/quickstart.py
"""

from repro.container import DockerEngine, ImageBuilder
from repro.core import AttachOptions, attach
from repro.kernel import boot


def main() -> None:
    # 1. Boot a simulated host (kernel, ext4 rootfs with host tools, /proc, /dev).
    machine = boot()
    docker = DockerEngine(machine)

    # 2. Build and run a *slim* application image: just the app and its config.
    slim_image = (ImageBuilder("mysql-slim", "8.0")
                  .add_file("/usr/sbin/mysqld", size=24_000_000, mode=0o755)
                  .add_file("/etc/my.cnf", content="[mysqld]\ndatadir=/var/lib/mysql\n")
                  .add_dir("/var/lib/mysql")
                  .entrypoint("/usr/sbin/mysqld")
                  .env("MYSQL_DATABASE", "orders")
                  .build())
    container = docker.run(slim_image, name="db")
    print(f"started container 'db' (pid {container.init_pid}), "
          f"image size {slim_image.size_bytes / 1e6:.1f} MB")

    # The container has no debugging tools at all:
    app_view = docker.exec_in_container(container, ["/bin/sh"])
    print("gdb inside the container before attach:", app_view.exists("/usr/bin/gdb"))

    # 3. Attach: host tools become visible, the app's filesystem moves to
    #    /var/lib/cntr, and the shell runs with the container's identity.
    session = attach(machine, docker, "db", options=AttachOptions())
    shell = session.shell_syscalls
    print("gdb inside the attach session:", shell.exists("/usr/bin/gdb"))
    print("application config seen from the session:",
          shell.read(shell.open(session.application_path("/etc/my.cnf")), 200).decode().strip())
    print("session environment keeps the app's variables:",
          shell.getenv("MYSQL_DATABASE"))

    # 4. Run a host tool (gdb) against the containerised application.
    gdb = session.exec_tool("gdb", ["-p", str(container.init_process.vpid())])
    print(f"gdb started as pid {gdb.process.pid} inside the container's namespaces")
    print("FUSE requests served by CntrFS during this session:",
          session.client_fs.connection.stats.requests_total)

    session.detach()
    print("detached; the application container was never modified "
          f"(its mounts: {len(container.init_process.mnt_ns.mounts)})")


if __name__ == "__main__":
    main()
