#!/usr/bin/env python3
"""Run the xfstests generic group against CntrFS and the native baseline.

Reproduces the paper's §5.1 table: 90 of 94 generic tests pass on CntrFS
mounted over tmpfs, with the four documented failures.

Run with:  python examples/xfstests_run.py
"""

from repro.xfstests import XfstestsRunner, cntrfs_environment, native_environment


def main() -> None:
    for name, factory in (("native ext4", native_environment),
                          ("CntrFS over tmpfs", cntrfs_environment)):
        summary = XfstestsRunner(factory).run()
        print(f"=== {name} ===")
        print(summary.format_table())
        print()


if __name__ == "__main__":
    main()
