#!/usr/bin/env python3
"""Two containers under contention, told apart by their pressure files.

The observability layer gives every stall the simulator models a second,
Linux-shaped home: ``/proc/pressure/{cpu,memory,io}`` for the system and
``cpu.pressure`` / ``memory.pressure`` / ``io.pressure`` per cgroup.  This
example starts two containers from the same image — one throttled hard
(``cpu.max`` at 20%, a tiny ``memory.high``) and one unconstrained — runs
the *same* workload in each, and prints their diverging pressure files: the
squeezed container shows cpu and memory stall time, the free one stays near
zero, and the system files aggregate both.

Run with:  python examples/psi_pressure.py
"""

from repro.container import DockerEngine, ImageBuilder
from repro.fs.constants import OpenFlags
from repro.kernel import boot
from repro.kernel.cgroups import CgroupLimits

RECORD = 64 << 10
RECORDS = 16                     # 1 MiB of writes per container
SPIN_OPS = 200                   # 20ms of pure CPU per container


def build_image():
    return (ImageBuilder("svc", "1.0")
            .add_file("/usr/sbin/svc", size=500_000, mode=0o755)
            .entrypoint("/usr/sbin/svc").build())


def cgroupfs_read(sc, path: str) -> str:
    fd = sc.open(path, OpenFlags.O_RDONLY)
    try:
        return sc.read(fd, 1 << 14).decode()
    finally:
        sc.close(fd)


def spinner(clock, ops, op_ns=100_000):
    def body():
        for _ in range(ops):
            clock.advance(op_ns)
            yield None
    return body


def writer(sc, path):
    def body():
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
        yield None
        for _ in range(RECORDS):
            sc.write(fd, b"w" * RECORD)
            yield None
        sc.close(fd)
    return body


def show_pressure(sc, title: str, directory: str) -> None:
    print(f"  {title}")
    for name in ("cpu.pressure", "memory.pressure", "io.pressure"):
        body = cgroupfs_read(sc, f"{directory}/{name}")
        for line in body.splitlines():
            print(f"    {name:<16} {line}")


def main() -> None:
    machine = boot()
    kernel = machine.kernel
    docker = DockerEngine(machine)
    image = build_image()

    # docker run --cpus 0.2 --memory-reservation 128k vs. no limits at all.
    squeezed = docker.run(image, name="squeezed",
                          limits=CgroupLimits(cpu_quota_us=2_000,
                                              cpu_period_us=10_000,
                                              memory_high_bytes=128 << 10))
    free = docker.run(image, name="free", limits=CgroupLimits())

    # Inject one "tool" per container (Cntr's debugging-shell path) and run
    # the same CPU spin + write workload in both, scheduled concurrently so
    # they genuinely contend for the virtual CPU.
    tools = {}
    controller = kernel.cpu_controller()
    for container in (squeezed, free):
        tool = machine.spawn_host_process(["/usr/bin/gdb"])
        kernel.cgroups.attach(tool.process.pid, container.cgroup_path)
        tool.makedirs(f"/work-{container.name}")
        controller.spawn(tool.process, spinner(machine.clock, SPIN_OPS))
        controller.spawn(tool.process,
                         writer(tool, f"/work-{container.name}/trace.dat"))
        tools[container.name] = tool
    controller.run()

    admin = machine.spawn_host_process(["/usr/bin/top"])
    print("per-container pressure (cgroupfs):")
    for container in (squeezed, free):
        cgroup = kernel.cgroups.lookup(container.cgroup_path)
        quota = cgroup.limits.cpu_max_text().strip()
        show_pressure(admin, f"{container.name} (cpu.max={quota})",
                      f"/sys/fs/cgroup{container.cgroup_path}")

    print("\nsystem-wide pressure (/proc/pressure):")
    for resource in ("cpu", "memory", "io"):
        body = cgroupfs_read(admin, f"/proc/pressure/{resource}")
        for line in body.splitlines():
            print(f"  {resource:<8} {line}")

    squeezed_cpu = kernel.cgroups.lookup(squeezed.cgroup_path)
    free_cpu = kernel.cgroups.lookup(free.cgroup_path)
    squeezed_stall = squeezed_cpu.psi.tracker("cpu").total_some_ns
    free_stall = free_cpu.psi.tracker("cpu").total_some_ns
    print(f"\ncpu stall time: squeezed={squeezed_stall}ns "
          f"free={free_stall}ns")
    assert squeezed_stall > free_stall, "the quota must show up as pressure"


if __name__ == "__main__":
    main()
