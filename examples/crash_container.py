#!/usr/bin/env python3
"""Power-fail a machine mid-write and watch the journal replay on remount.

A commit log is appended record by record, fsync'ing after every second
record; then the power goes out with a half-written, never-synced tail.
On remount the ext4-like journal replays: the fsync'd prefix survives to
the byte, the unflushed tail is gone.  The same scenario on CntrFS shows
the paper's delayed-sync trade-off — the FUSE server applied every write
synchronously, so the client crash only rewinds to the last durability
point *it* promised.

Run with:  python examples/crash_container.py
"""

from repro.fs.constants import OpenFlags
from repro.xfstests import cntrfs_environment, native_environment

CREAT_RW = OpenFlags.O_CREAT | OpenFlags.O_RDWR


def run_scenario(env) -> None:
    print(f"=== {env.name} ===")
    env.make_durable()
    log = env.path("commit.log")
    fd = env.sc.open(log, CREAT_RW, 0o644)

    offset = 0
    synced_upto = 0
    for n in range(1, 8):
        record = f"record-{n:02d}: balance += {n * 100}\n".encode()
        env.sc.pwrite(fd, record, offset)
        offset += len(record)
        if n % 2 == 0:
            env.sc.fsync(fd)
            synced_upto = offset
            print(f"  wrote record {n:02d}  -- fsync: durable up to byte "
                  f"{synced_upto}")
        else:
            print(f"  wrote record {n:02d}  -- dirty in the page cache")

    print(f"  POWER FAIL at byte {offset} "
          f"(last fsync covered {synced_upto})")
    # A power failure drops the descriptor raw: no close, no flush.
    env.sc.process.fds.pop(fd, None)
    env.power_fail()

    survived = env.read_file(log)
    print(f"  after remount: {len(survived)} bytes survived")
    for line in survived.decode().splitlines():
        print(f"    {line}")
    if env.is_cntrfs:
        print("  CntrFS: the server applied every WRITE synchronously; the")
        print("  client crash rewound only past its own fsync promise.")
    else:
        assert len(survived) == synced_upto
        print("  ext4: journal replay kept exactly the fsync'd prefix;")
        print("  the unflushed tail died with the page cache.")
    print()


def main() -> None:
    run_scenario(native_environment())
    run_scenario(cntrfs_environment())


if __name__ == "__main__":
    main()
